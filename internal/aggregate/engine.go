package aggregate

import (
	"fmt"
	"time"

	"xdmodfed/internal/config"
	"xdmodfed/internal/realm"
	"xdmodfed/internal/warehouse"
)

// AggSchemaSuffix names the schema holding an instance's aggregation
// tables: "<realm schema>_agg" (kept separate from raw data because the
// hub replicates raw schemas verbatim and derives its own aggregates).
const AggSchemaSuffix = "_agg"

// Engine aggregates realm fact tables into per-period aggregation
// tables inside one warehouse, applying this instance's (or hub's)
// aggregation-level configuration to numeric dimensions.
type Engine struct {
	db     *warehouse.DB
	levels map[string]config.AggregationLevels // dimension id -> levels

	// rebuildWorkers caps how many workers Reaggregate's work-stealing
	// pool runs; <= 0 means GOMAXPROCS (see rebuild.go).
	rebuildWorkers int

	// shards/shardKey partition each realm's aggregation tables into
	// independent per-schema shards (see shard.go). shards <= 1 keeps
	// the legacy single "<schema>_agg" table set.
	shards   int
	shardKey string
}

// New creates an engine over db with the given aggregation levels.
// Numeric dimensions without configured levels fall back to a single
// catch-all bucket.
func New(db *warehouse.DB, levels []config.AggregationLevels) (*Engine, error) {
	e := &Engine{db: db, levels: make(map[string]config.AggregationLevels, len(levels))}
	for _, l := range levels {
		if err := l.Validate(); err != nil {
			return nil, err
		}
		if _, dup := e.levels[l.Dimension]; dup {
			return nil, fmt.Errorf("aggregate: dimension %q configured twice", l.Dimension)
		}
		e.levels[l.Dimension] = l
	}
	return e, nil
}

// DB returns the warehouse the engine aggregates into.
func (e *Engine) DB() *warehouse.DB { return e.db }

// Levels returns the engine's levels for a dimension id.
func (e *Engine) Levels(dim string) (config.AggregationLevels, bool) {
	l, ok := e.levels[dim]
	return l, ok
}

// SetLevels replaces the levels for one dimension; the caller must
// re-aggregate afterwards ("the administrator will update the
// appropriate configuration file ... then re-aggregate all raw
// federation data", paper §II-C3).
func (e *Engine) SetLevels(l config.AggregationLevels) error {
	if err := l.Validate(); err != nil {
		return err
	}
	e.levels[l.Dimension] = l
	return nil
}

// SetRebuildWorkers sets how many source schemas a full Reaggregate
// scans concurrently; n <= 0 restores the default (GOMAXPROCS).
func (e *Engine) SetRebuildWorkers(n int) { e.rebuildWorkers = n }

// AggTableName names the aggregation table for a fact table + period.
func AggTableName(fact string, p Period) string {
	return fmt.Sprintf("%s_by_%s", fact, p)
}

// AggSchema names the aggregate schema for a realm.
func AggSchema(info realm.Info) string { return info.Schema + AggSchemaSuffix }

// measureColumns returns the distinct numeric fact columns referenced
// by the realm's metrics (for sums/mins/maxes) and the weighted pairs
// ("col*weight") needed by weighted-average metrics.
func measureColumns(info realm.Info) (cols, weights []string) {
	seen := map[string]bool{}
	wseen := map[string]bool{}
	for _, m := range info.Metrics {
		if m.Column != "" && !seen[m.Column] {
			seen[m.Column] = true
			cols = append(cols, m.Column)
		}
		if m.WeightColumn != "" {
			if !seen[m.WeightColumn] {
				seen[m.WeightColumn] = true
				cols = append(cols, m.WeightColumn)
			}
			key := m.Column + "*" + m.WeightColumn
			if !wseen[key] {
				wseen[key] = true
				weights = append(weights, key)
			}
		}
	}
	return cols, weights
}

func wsumColName(pair string) string {
	out := make([]byte, 0, len(pair)+8)
	out = append(out, "wsum_"...)
	for i := 0; i < len(pair); i++ {
		if pair[i] == '*' {
			out = append(out, "_x_"...)
		} else {
			out = append(out, pair[i])
		}
	}
	return string(out)
}

// aggDef builds the aggregation table definition for a realm + period.
func aggDef(info realm.Info, p Period) warehouse.TableDef {
	def := warehouse.TableDef{Name: AggTableName(info.FactTable, p)}
	def.Columns = append(def.Columns, warehouse.Column{Name: "period_key", Type: warehouse.TypeInt})
	pk := []string{"period_key"}
	for _, d := range info.Dimensions {
		col := "dim_" + d.ID
		def.Columns = append(def.Columns, warehouse.Column{Name: col, Type: warehouse.TypeString})
		pk = append(pk, col)
	}
	def.Columns = append(def.Columns, warehouse.Column{Name: "n", Type: warehouse.TypeInt})
	def.Columns = append(def.Columns, warehouse.Column{Name: "last_ts", Type: warehouse.TypeFloat})
	cols, weights := measureColumns(info)
	for _, c := range cols {
		def.Columns = append(def.Columns,
			warehouse.Column{Name: "sum_" + c, Type: warehouse.TypeFloat},
			warehouse.Column{Name: "min_" + c, Type: warehouse.TypeFloat},
			warehouse.Column{Name: "max_" + c, Type: warehouse.TypeFloat},
			warehouse.Column{Name: "last_" + c, Type: warehouse.TypeFloat},
		)
	}
	for _, w := range weights {
		def.Columns = append(def.Columns, warehouse.Column{Name: wsumColName(w), Type: warehouse.TypeFloat})
	}
	def.PrimaryKey = pk
	return def
}

// Setup creates the aggregation tables for every period of a realm,
// one table set per shard.
func (e *Engine) Setup(info realm.Info) error {
	if err := info.Validate(); err != nil {
		return err
	}
	for k := 0; k < e.NumShards(); k++ {
		s := e.db.EnsureSchema(e.aggSchemaShard(info, k))
		for _, p := range Periods() {
			if _, err := s.EnsureTable(aggDef(info, p)); err != nil {
				return err
			}
		}
	}
	return nil
}

// target is one resolved aggregation table.
type target struct {
	period Period
	tab    *warehouse.Table
}

// dimValue renders one fact row's value for a dimension: categorical
// dimensions use the raw string; numeric dimensions bin into the
// configured aggregation level.
func (e *Engine) dimValue(d realm.Dimension, r warehouse.Row) string {
	if !d.Numeric {
		return r.String(d.Column)
	}
	v := r.Float(d.Column)
	if l, ok := e.levels[d.ID]; ok {
		return l.BucketFor(v)
	}
	return "all"
}

// ApplyFactRow merges one fact row into all period aggregation tables
// (of the shard the row routes to). Aggregation is additive, so newly
// ingested facts can be folded in incrementally (the paper's daily
// aggregation of "newly ingested data"). Rows of a realm without a
// resource dimension route as if read from the realm's own schema —
// callers folding replicated data on source-schema-sharded realms must
// use ApplyFactRows, which carries the source schema.
func (e *Engine) ApplyFactRow(info realm.Info, r warehouse.Row) error {
	st, err := e.shardTargets(info)
	if err != nil {
		return err
	}
	cols, weights := measureColumns(info)
	return e.db.Do(func() error {
		return e.applyLocked(info, st, e.router(info), info.Schema, cols, weights, r)
	})
}

// factTime extracts a fact row's time-bucketing column.
func factTime(info realm.Info, r warehouse.Row) (time.Time, error) {
	ts, ok := r.Lookup(info.TimeColumn)
	if !ok {
		return time.Time{}, fmt.Errorf("aggregate: fact row missing time column %q", info.TimeColumn)
	}
	t, ok := ts.(time.Time)
	if !ok {
		return time.Time{}, fmt.Errorf("aggregate: time column %q is %T, want time.Time", info.TimeColumn, ts)
	}
	return t, nil
}

// applyLocked folds one fact row into the targets of the shard the
// row routes to. Must run while holding the DB write lock.
func (e *Engine) applyLocked(info realm.Info, st [][]target, rt shardRouter, sourceSchema string,
	cols, weights []string, r warehouse.Row) error {
	mFactsApplied.Inc()
	t, err := factTime(info, r)
	if err != nil {
		return err
	}
	dims := make([]string, len(info.Dimensions))
	for i, d := range info.Dimensions {
		dims[i] = e.dimValue(d, r)
	}
	for _, tg := range st[rt.shardOf(sourceSchema, dims)] {
		pk := tg.period.Key(t)
		key := make([]any, 0, 1+len(dims))
		key = append(key, pk)
		for _, d := range dims {
			key = append(key, d)
		}
		if err := mergeAggRow(tg.tab, key, info, r, dims, cols, weights, pk, t); err != nil {
			return err
		}
	}
	return nil
}

// mergeAggRow adds one fact's contribution to one aggregation row,
// creating the row when absent. Must run under the DB write lock.
func mergeAggRow(tab *warehouse.Table, key []any, info realm.Info, r warehouse.Row,
	dims, cols, weights []string, periodKey int64, factTime time.Time) error {

	ts := float64(factTime.UnixNano()) / 1e9
	set := map[string]any{"period_key": periodKey}
	for i, d := range info.Dimensions {
		set["dim_"+d.ID] = dims[i]
	}
	existing, ok := tab.GetByKey(key...)
	if !ok {
		set["n"] = int64(1)
		set["last_ts"] = ts
		for _, c := range cols {
			v := r.Float(c)
			set["sum_"+c] = v
			set["min_"+c] = v
			set["max_"+c] = v
			set["last_"+c] = v
		}
		for _, w := range weights {
			set[wsumColName(w)] = wProduct(r, w)
		}
		return tab.Upsert(set)
	}
	newer := ts >= existing.Float("last_ts")
	set["n"] = existing.Int("n") + 1
	if newer {
		set["last_ts"] = ts
	} else {
		set["last_ts"] = existing.Float("last_ts")
	}
	for _, c := range cols {
		v := r.Float(c)
		set["sum_"+c] = existing.Float("sum_"+c) + v
		mn, mx := existing.Float("min_"+c), existing.Float("max_"+c)
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
		set["min_"+c] = mn
		set["max_"+c] = mx
		if newer {
			set["last_"+c] = v
		} else {
			set["last_"+c] = existing.Float("last_" + c)
		}
	}
	for _, w := range weights {
		set[wsumColName(w)] = existing.Float(wsumColName(w)) + wProduct(r, w)
	}
	return tab.Upsert(set)
}

func wProduct(r warehouse.Row, pair string) float64 {
	for i := 0; i < len(pair); i++ {
		if pair[i] == '*' {
			return r.Float(pair[:i]) * r.Float(pair[i+1:])
		}
	}
	return 0
}

// AggregateSchema (re)aggregates every fact row found in the named
// source schema's fact table. Pass the realm's own schema on a
// satellite; on a federation hub, call once per replicated satellite
// schema (fed_<instance>) to fold all federation data into the hub's
// aggregation tables.
func (e *Engine) AggregateSchema(info realm.Info, sourceSchema string) (int, error) {
	fact, err := e.db.TableIn(sourceSchema, info.FactTable)
	if err != nil {
		return 0, err
	}
	st, err := e.shardTargets(info)
	if err != nil {
		return 0, err
	}
	rt := e.router(info)
	cols, weights := measureColumns(info)
	n := 0
	var applyErr error
	err = e.db.Do(func() error {
		fact.Scan(func(r warehouse.Row) bool {
			if applyErr = e.applyLocked(info, st, rt, sourceSchema, cols, weights, r); applyErr != nil {
				return false
			}
			n++
			return true
		})
		return applyErr
	})
	return n, err
}

// Truncate clears a realm's aggregation tables across every shard. The
// commit bumps each touched shard schema's epoch, so query-result
// cache entries computed against the old contents are never served
// again.
func (e *Engine) Truncate(info realm.Info) error {
	st, err := e.shardTargets(info)
	if err != nil {
		return err
	}
	return e.db.Do(func() error {
		for _, targets := range st {
			for _, tg := range targets {
				tg.tab.Truncate()
			}
		}
		return nil
	})
}

// Package storage implements the Storage realm the paper introduces in
// §III-A: metrics describing compute storage — file counts, logical
// and physical usage, quota thresholds, quota utilization and user
// counts — with drill-down dimensions for filesystem, mountpoint,
// resource type, user and PI. Storage data arrive as JSON documents
// (one usage snapshot per user per filesystem per sample time);
// "installations must only ensure their data validates against our
// provided JSON schema" (§III-A), so ingest validates each document
// before it reaches the warehouse.
package storage

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"xdmodfed/internal/realm"
	"xdmodfed/internal/warehouse"
)

// Warehouse locations for the realm.
const (
	SchemaName = "modw_storage"
	FactTable  = "storage_usage"
)

// Snapshot is one storage usage sample: the state of one user's data
// on one filesystem at one instant. This is the JSON interchange form.
type Snapshot struct {
	Resource      string    `json:"resource"`       // filesystem name, e.g. "isilon-home"
	ResourceType  string    `json:"resource_type"`  // "persistent" or "scratch"
	Mountpoint    string    `json:"mountpoint"`     //
	User          string    `json:"user"`           //
	PI            string    `json:"pi"`             //
	Timestamp     time.Time `json:"dt"`             // sample time
	FileCount     int64     `json:"file_count"`     //
	LogicalBytes  int64     `json:"logical_usage"`  //
	PhysicalBytes int64     `json:"physical_usage"` //
	SoftThreshold int64     `json:"soft_threshold"` // soft quota, bytes (0 = none)
	HardThreshold int64     `json:"hard_threshold"` // hard quota, bytes (0 = none)
}

// QuotaUtilization returns logical usage as a fraction of the soft
// quota ("Logical Quota Utilization"), or 0 when no quota is set.
func (s Snapshot) QuotaUtilization() float64 {
	if s.SoftThreshold <= 0 {
		return 0
	}
	return float64(s.LogicalBytes) / float64(s.SoftThreshold)
}

// Validate applies the realm's JSON schema rules.
func (s Snapshot) Validate() error {
	if s.Resource == "" {
		return fmt.Errorf("storage: snapshot missing resource")
	}
	switch s.ResourceType {
	case "persistent", "scratch":
	default:
		return fmt.Errorf("storage: snapshot for %q has invalid resource_type %q (want persistent or scratch)", s.Resource, s.ResourceType)
	}
	if s.Mountpoint == "" {
		return fmt.Errorf("storage: snapshot for %q missing mountpoint", s.Resource)
	}
	if s.User == "" {
		return fmt.Errorf("storage: snapshot for %q missing user", s.Resource)
	}
	if s.Timestamp.IsZero() {
		return fmt.Errorf("storage: snapshot for %q/%q missing timestamp", s.Resource, s.User)
	}
	if s.FileCount < 0 || s.LogicalBytes < 0 || s.PhysicalBytes < 0 {
		return fmt.Errorf("storage: snapshot for %q/%q has negative counters", s.Resource, s.User)
	}
	if s.SoftThreshold < 0 || s.HardThreshold < 0 {
		return fmt.Errorf("storage: snapshot for %q/%q has negative quota", s.Resource, s.User)
	}
	if s.HardThreshold > 0 && s.SoftThreshold > s.HardThreshold {
		return fmt.Errorf("storage: snapshot for %q/%q has soft quota above hard quota", s.Resource, s.User)
	}
	return nil
}

// ParseJSON decodes and validates a JSON array of snapshots, the
// interchange document format provided to centers. All-or-nothing: a
// single invalid snapshot rejects the document, matching schema
// validation semantics.
func ParseJSON(r io.Reader) ([]Snapshot, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var snaps []Snapshot
	if err := dec.Decode(&snaps); err != nil {
		return nil, fmt.Errorf("storage: invalid JSON document: %w", err)
	}
	for i, s := range snaps {
		if err := s.Validate(); err != nil {
			return nil, fmt.Errorf("storage: document record %d: %w", i, err)
		}
	}
	return snaps, nil
}

// WriteJSON encodes snapshots in the interchange format.
func WriteJSON(w io.Writer, snaps []Snapshot) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(snaps)
}

// Def returns the storage fact table definition.
func Def() warehouse.TableDef {
	return warehouse.TableDef{
		Name: FactTable,
		Columns: []warehouse.Column{
			{Name: "resource", Type: warehouse.TypeString},
			{Name: "resource_type", Type: warehouse.TypeString},
			{Name: "mountpoint", Type: warehouse.TypeString},
			{Name: "username", Type: warehouse.TypeString},
			{Name: "pi", Type: warehouse.TypeString},
			{Name: "dt", Type: warehouse.TypeTime},
			{Name: "file_count", Type: warehouse.TypeInt},
			{Name: "logical_bytes", Type: warehouse.TypeInt},
			{Name: "physical_bytes", Type: warehouse.TypeInt},
			{Name: "soft_threshold", Type: warehouse.TypeInt},
			{Name: "hard_threshold", Type: warehouse.TypeInt},
			{Name: "quota_util", Type: warehouse.TypeFloat},
			{Name: "day_key", Type: warehouse.TypeInt},
			{Name: "month_key", Type: warehouse.TypeInt},
		},
		PrimaryKey: []string{"resource", "username", "day_key"},
		Indexes:    [][]string{{"month_key"}},
	}
}

// Metric and dimension IDs. The paper's initial storage metric set:
// file count; logical and physical usage; hard and soft quota
// thresholds; logical quota utilization; user count.
const (
	MetricFileCount     = "file_count"
	MetricLogicalUsage  = "logical_usage"
	MetricPhysicalUsage = "physical_usage"
	MetricSoftQuota     = "soft_threshold"
	MetricHardQuota     = "hard_threshold"
	MetricQuotaUtil     = "quota_utilization"
	MetricUserCount     = "user_count"

	DimResource     = "resource"
	DimMountpoint   = "mountpoint"
	DimResourceType = "resource_type"
	DimUser         = "person"
	DimPI           = "pi"
)

// RealmInfo describes the Storage realm.
func RealmInfo() realm.Info {
	return realm.Info{
		Name:       "Storage",
		Schema:     SchemaName,
		FactTable:  FactTable,
		TimeColumn: "dt",
		// Usage metrics use SUM_LAST: within each (user, filesystem)
		// aggregation cell only the most recent snapshot of the period
		// counts, then cells sum — so sub-period sampling (the paper's
		// "sampling frequency" caveat, §III-A) never overcounts.
		Metrics: []realm.Metric{
			{ID: MetricFileCount, Name: "File Count", Unit: "files", Func: warehouse.AggSumLast, Column: "file_count"},
			{ID: MetricLogicalUsage, Name: "Logical Usage", Unit: "bytes", Func: warehouse.AggSumLast, Column: "logical_bytes"},
			{ID: MetricPhysicalUsage, Name: "Physical Usage", Unit: "bytes", Func: warehouse.AggSumLast, Column: "physical_bytes"},
			{ID: MetricSoftQuota, Name: "Soft Quota Threshold", Unit: "bytes", Func: warehouse.AggSumLast, Column: "soft_threshold"},
			{ID: MetricHardQuota, Name: "Hard Quota Threshold", Unit: "bytes", Func: warehouse.AggSumLast, Column: "hard_threshold"},
			{ID: MetricQuotaUtil, Name: "Logical Quota Utilization", Unit: "ratio", Func: warehouse.AggAvg, Column: "quota_util"},
			{ID: MetricUserCount, Name: "User Count", Unit: "users", Func: warehouse.AggCount},
		},
		Dimensions: []realm.Dimension{
			{ID: DimResource, Name: "Resource (Filesystem)", Column: "resource"},
			{ID: DimMountpoint, Name: "Mountpoint", Column: "mountpoint"},
			{ID: DimResourceType, Name: "Resource Type", Column: "resource_type"},
			{ID: DimUser, Name: "System Username", Column: "username"},
			{ID: DimPI, Name: "PI", Column: "pi"},
		},
	}
}

// Setup creates the realm's schema and fact table.
func Setup(db *warehouse.DB) (*warehouse.Table, error) {
	s := db.EnsureSchema(SchemaName)
	return s.EnsureTable(Def())
}

func dayKey(t time.Time) int64 {
	t = t.UTC()
	return int64(t.Year())*10000 + int64(t.Month())*100 + int64(t.Day())
}

func monthKey(t time.Time) int64 {
	t = t.UTC()
	return int64(t.Year())*100 + int64(t.Month())
}

// FactValues converts a snapshot into a positional storage_usage row
// (Def column order). Snapshots are keyed by (resource, user, day); a
// later snapshot the same day replaces the earlier one via upsert,
// implementing the paper's "sampling frequency" caveat — sub-daily
// samples collapse to the day's latest state.
func FactValues(s Snapshot) []any {
	return []any{
		s.Resource, s.ResourceType, s.Mountpoint, s.User, s.PI,
		s.Timestamp, s.FileCount, s.LogicalBytes, s.PhysicalBytes,
		s.SoftThreshold, s.HardThreshold, s.QuotaUtilization(),
		dayKey(s.Timestamp), monthKey(s.Timestamp),
	}
}

// FactRow is the named-column form of FactValues.
func FactRow(s Snapshot) map[string]any {
	return map[string]any{
		"resource":       s.Resource,
		"resource_type":  s.ResourceType,
		"mountpoint":     s.Mountpoint,
		"username":       s.User,
		"pi":             s.PI,
		"dt":             s.Timestamp,
		"file_count":     s.FileCount,
		"logical_bytes":  s.LogicalBytes,
		"physical_bytes": s.PhysicalBytes,
		"soft_threshold": s.SoftThreshold,
		"hard_threshold": s.HardThreshold,
		"quota_util":     s.QuotaUtilization(),
		"day_key":        dayKey(s.Timestamp),
		"month_key":      monthKey(s.Timestamp),
	}
}

package storage

import (
	"strings"
	"testing"
)

// FuzzParseJSON: the storage realm's JSON ingest faces arbitrary
// third-party documents; it must never panic, and anything it accepts
// must satisfy the schema.
func FuzzParseJSON(f *testing.F) {
	f.Add(`[{"resource":"fs","resource_type":"scratch","mountpoint":"/s","user":"u","pi":"p","dt":"2017-01-01T00:00:00Z","file_count":1,"logical_usage":1,"physical_usage":1,"soft_threshold":0,"hard_threshold":0}]`)
	f.Add(`[]`)
	f.Add(`{`)
	f.Add(`[{"resource":""}]`)
	f.Add(`[{"resource":"x","file_count":-5}]`)
	f.Fuzz(func(t *testing.T, input string) {
		snaps, err := ParseJSON(strings.NewReader(input))
		if err != nil {
			return
		}
		for _, s := range snaps {
			if err := s.Validate(); err != nil {
				t.Fatalf("accepted invalid snapshot: %v", err)
			}
		}
	})
}

package storage

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"xdmodfed/internal/warehouse"
)

func snap() Snapshot {
	return Snapshot{
		Resource: "isilon-home", ResourceType: "persistent", Mountpoint: "/home",
		User: "alice", PI: "smith",
		Timestamp:     time.Date(2017, 3, 15, 6, 0, 0, 0, time.UTC),
		FileCount:     120000,
		LogicalBytes:  5 << 30,
		PhysicalBytes: 7 << 30,
		SoftThreshold: 10 << 30,
		HardThreshold: 12 << 30,
	}
}

func TestRealmInfoValid(t *testing.T) {
	if err := RealmInfo().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotValidate(t *testing.T) {
	if err := snap().Validate(); err != nil {
		t.Fatalf("valid snapshot rejected: %v", err)
	}
	bad := []func(*Snapshot){
		func(s *Snapshot) { s.Resource = "" },
		func(s *Snapshot) { s.ResourceType = "volatile" },
		func(s *Snapshot) { s.Mountpoint = "" },
		func(s *Snapshot) { s.User = "" },
		func(s *Snapshot) { s.Timestamp = time.Time{} },
		func(s *Snapshot) { s.FileCount = -1 },
		func(s *Snapshot) { s.LogicalBytes = -1 },
		func(s *Snapshot) { s.SoftThreshold = -5 },
		func(s *Snapshot) { s.SoftThreshold = s.HardThreshold + 1 },
	}
	for i, mutate := range bad {
		s := snap()
		mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestQuotaUtilization(t *testing.T) {
	s := snap()
	if got := s.QuotaUtilization(); got != 0.5 {
		t.Errorf("quota util = %g, want 0.5", got)
	}
	s.SoftThreshold = 0
	if got := s.QuotaUtilization(); got != 0 {
		t.Errorf("no quota util = %g, want 0", got)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	in := []Snapshot{snap(), func() Snapshot { s := snap(); s.User = "bob"; return s }()}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ParseJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[0] != in[0] || out[1] != in[1] {
		t.Errorf("round trip mismatch: %+v", out)
	}
}

func TestParseJSONRejectsInvalidDocument(t *testing.T) {
	cases := []string{
		`{not json`,
		`[{"resource":"x"}]`, // fails schema
		`[{"resource":"x","resource_type":"scratch","mountpoint":"/x","user":"u","dt":"2017-01-01T00:00:00Z","file_count":1,"unknown_field":1}]`,
	}
	for i, c := range cases {
		if _, err := ParseJSON(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestParseJSONAllOrNothing(t *testing.T) {
	doc := `[
	 {"resource":"fs","resource_type":"scratch","mountpoint":"/s","user":"u","pi":"p","dt":"2017-01-01T00:00:00Z","file_count":1,"logical_usage":1,"physical_usage":1,"soft_threshold":0,"hard_threshold":0},
	 {"resource":"","resource_type":"scratch","mountpoint":"/s","user":"u","pi":"p","dt":"2017-01-01T00:00:00Z","file_count":1,"logical_usage":1,"physical_usage":1,"soft_threshold":0,"hard_threshold":0}
	]`
	if _, err := ParseJSON(strings.NewReader(doc)); err == nil {
		t.Error("document with one invalid record must be rejected whole")
	}
}

func TestFactRowAndSetup(t *testing.T) {
	db := warehouse.Open("s")
	tab, err := Setup(db)
	if err != nil {
		t.Fatal(err)
	}
	row := FactRow(snap())
	if row["day_key"] != int64(20170315) || row["month_key"] != int64(201703) {
		t.Errorf("keys: %v %v", row["day_key"], row["month_key"])
	}
	if row["quota_util"] != 0.5 {
		t.Errorf("quota util col = %v", row["quota_util"])
	}
	if err := db.Upsert(SchemaName, FactTable, row); err != nil {
		t.Fatal(err)
	}
	// A second sample the same day replaces the first (sub-daily
	// sampling collapses to the day's latest state).
	s2 := snap()
	s2.Timestamp = s2.Timestamp.Add(6 * time.Hour)
	s2.FileCount = 125000
	if err := db.Upsert(SchemaName, FactTable, FactRow(s2)); err != nil {
		t.Fatal(err)
	}
	if db.Count(SchemaName, FactTable) != 1 {
		t.Errorf("count = %d, want 1 (same-day dedup)", db.Count(SchemaName, FactTable))
	}
	db.View(func() error {
		r, ok := tab.GetByKey("isilon-home", "alice", int64(20170315))
		if !ok || r.Int("file_count") != 125000 {
			t.Errorf("latest sample should win: %v", r.Values())
		}
		return nil
	})
}

// Package alloc implements the Allocations realm. The paper describes
// XDMoD as supporting "job, allocation, and performance data and
// metrics" (§I); this realm tracks project allocations — awards of
// XD SUs over a time window — and the charges the Jobs realm accrues
// against them, exposing award/charge/balance and burn-rate metrics so
// "funding agencies, institutional administration, computing center
// management" (§I-A) can watch consumption against awards.
package alloc

import (
	"fmt"
	"time"

	"xdmodfed/internal/realm"
	"xdmodfed/internal/realm/jobs"
	"xdmodfed/internal/warehouse"
)

// Warehouse locations for the realm.
const (
	SchemaName  = "modw_alloc"
	AwardTable  = "allocation"
	ChargeTable = "allocation_charge"
)

// Allocation is one award of standardized SUs to a project.
type Allocation struct {
	Project string // charge account, matches jobfact's pi column
	Award   float64
	Start   time.Time
	End     time.Time
}

// Validate checks the award.
func (a Allocation) Validate() error {
	if a.Project == "" {
		return fmt.Errorf("alloc: allocation missing project")
	}
	if a.Award <= 0 {
		return fmt.Errorf("alloc: allocation for %q has non-positive award %g", a.Project, a.Award)
	}
	if a.Start.IsZero() || a.End.IsZero() || !a.End.After(a.Start) {
		return fmt.Errorf("alloc: allocation for %q has invalid window", a.Project)
	}
	return nil
}

// AwardDef returns the allocation table definition.
func AwardDef() warehouse.TableDef {
	return warehouse.TableDef{
		Name: AwardTable,
		Columns: []warehouse.Column{
			{Name: "project", Type: warehouse.TypeString},
			{Name: "award_xdsu", Type: warehouse.TypeFloat},
			{Name: "start_time", Type: warehouse.TypeTime},
			{Name: "end_time", Type: warehouse.TypeTime},
		},
		PrimaryKey: []string{"project", "start_time"},
	}
}

// ChargeDef returns the charge fact table definition: one row per job
// charged to an allocation.
func ChargeDef() warehouse.TableDef {
	return warehouse.TableDef{
		Name: ChargeTable,
		Columns: []warehouse.Column{
			{Name: "project", Type: warehouse.TypeString},
			{Name: "resource", Type: warehouse.TypeString},
			{Name: "job_id", Type: warehouse.TypeInt},
			{Name: "charge_time", Type: warehouse.TypeTime},
			{Name: "xdsu", Type: warehouse.TypeFloat},
			{Name: "month_key", Type: warehouse.TypeInt},
		},
		PrimaryKey: []string{"resource", "job_id"},
		Indexes:    [][]string{{"project"}},
	}
}

// Metric and dimension IDs.
const (
	MetricCharged   = "alloc_xdsu_charged"
	MetricChargeJob = "alloc_jobs_charged"

	DimProject  = "project"
	DimResource = "resource"
)

// RealmInfo describes the Allocations realm over the charge table.
func RealmInfo() realm.Info {
	return realm.Info{
		Name:       "Allocations",
		Schema:     SchemaName,
		FactTable:  ChargeTable,
		TimeColumn: "charge_time",
		Metrics: []realm.Metric{
			{ID: MetricCharged, Name: "XD SUs Charged to Allocations", Unit: "XD SU", Func: warehouse.AggSum, Column: "xdsu"},
			{ID: MetricChargeJob, Name: "Jobs Charged", Unit: "jobs", Func: warehouse.AggCount},
		},
		Dimensions: []realm.Dimension{
			{ID: DimProject, Name: "Project", Column: "project"},
			{ID: DimResource, Name: "Resource", Column: "resource"},
		},
	}
}

// Setup creates the realm's schema and tables.
func Setup(db *warehouse.DB) error {
	s := db.EnsureSchema(SchemaName)
	if _, err := s.EnsureTable(AwardDef()); err != nil {
		return err
	}
	_, err := s.EnsureTable(ChargeDef())
	return err
}

// AddAllocation records one award.
func AddAllocation(db *warehouse.DB, a Allocation) error {
	if err := a.Validate(); err != nil {
		return err
	}
	return db.Upsert(SchemaName, AwardTable, map[string]any{
		"project": a.Project, "award_xdsu": a.Award,
		"start_time": a.Start, "end_time": a.End,
	})
}

// ChargeFromJobs derives allocation charges from the Jobs realm fact
// table: every job whose PI matches an allocation's project within the
// award window produces a charge of its XD SUs. Re-running is
// idempotent (charges upsert by job identity). Returns charges made.
func ChargeFromJobs(db *warehouse.DB) (int, error) {
	awardTab, err := db.TableIn(SchemaName, AwardTable)
	if err != nil {
		return 0, fmt.Errorf("alloc: realm not set up: %w", err)
	}
	jobTab, err := db.TableIn(jobs.SchemaName, jobs.FactTable)
	if err != nil {
		return 0, fmt.Errorf("alloc: jobs realm not set up: %w", err)
	}
	type window struct{ start, end time.Time }
	windows := map[string][]window{}
	db.View(func() error {
		awardTab.Scan(func(r warehouse.Row) bool {
			st, _ := r.Lookup("start_time")
			en, _ := r.Lookup("end_time")
			windows[r.String("project")] = append(windows[r.String("project")],
				window{st.(time.Time), en.(time.Time)})
			return true
		})
		return nil
	})

	var charges []map[string]any
	db.View(func() error {
		jobTab.Scan(func(r warehouse.Row) bool {
			project := r.String(jobs.ColPI)
			wins, ok := windows[project]
			if !ok {
				return true
			}
			endV, _ := r.Lookup(jobs.ColEnd)
			end := endV.(time.Time)
			for _, w := range wins {
				if !end.Before(w.start) && end.Before(w.end) {
					charges = append(charges, map[string]any{
						"project":     project,
						"resource":    r.String(jobs.ColResource),
						"job_id":      r.Int(jobs.ColJobID),
						"charge_time": end,
						"xdsu":        r.Float(jobs.ColXDSU),
						"month_key":   r.Int(jobs.ColMonthKey),
					})
					break
				}
			}
			return true
		})
		return nil
	})
	for _, c := range charges {
		if err := db.Upsert(SchemaName, ChargeTable, c); err != nil {
			return 0, err
		}
	}
	return len(charges), nil
}

// Balance summarizes one project's allocation state.
type Balance struct {
	Project   string
	Award     float64
	Charged   float64
	Remaining float64
	// BurnPerDay is the average charge rate over the window so far;
	// ProjectedExhaustion is when the award runs out at that rate (zero
	// time when it will not).
	BurnPerDay          float64
	ProjectedExhaustion time.Time
}

// ProjectBalance computes the balance of one project at time now.
func ProjectBalance(db *warehouse.DB, project string, now time.Time) (Balance, error) {
	awardTab, err := db.TableIn(SchemaName, AwardTable)
	if err != nil {
		return Balance{}, err
	}
	chargeTab, err := db.TableIn(SchemaName, ChargeTable)
	if err != nil {
		return Balance{}, err
	}
	b := Balance{Project: project}
	var start time.Time
	found := false
	db.View(func() error {
		awardTab.Scan(func(r warehouse.Row) bool {
			if r.String("project") != project {
				return true
			}
			found = true
			b.Award += r.Float("award_xdsu")
			st, _ := r.Lookup("start_time")
			if start.IsZero() || st.(time.Time).Before(start) {
				start = st.(time.Time)
			}
			return true
		})
		chargeTab.ScanIndex([]string{"project"}, []any{project}, func(r warehouse.Row) bool {
			b.Charged += r.Float("xdsu")
			return true
		})
		return nil
	})
	if !found {
		return Balance{}, fmt.Errorf("alloc: project %q has no allocation", project)
	}
	b.Remaining = b.Award - b.Charged
	days := now.Sub(start).Hours() / 24
	if days > 0 {
		b.BurnPerDay = b.Charged / days
		if b.BurnPerDay > 0 && b.Remaining > 0 {
			b.ProjectedExhaustion = now.Add(time.Duration(b.Remaining / b.BurnPerDay * 24 * float64(time.Hour)))
		}
	}
	return b, nil
}

// OverspentProjects returns projects whose charges exceed their award.
func OverspentProjects(db *warehouse.DB, now time.Time) ([]Balance, error) {
	awardTab, err := db.TableIn(SchemaName, AwardTable)
	if err != nil {
		return nil, err
	}
	seen := map[string]bool{}
	var projects []string
	db.View(func() error {
		awardTab.Scan(func(r warehouse.Row) bool {
			p := r.String("project")
			if !seen[p] {
				seen[p] = true
				projects = append(projects, p)
			}
			return true
		})
		return nil
	})
	var out []Balance
	for _, p := range projects {
		b, err := ProjectBalance(db, p, now)
		if err != nil {
			return nil, err
		}
		if b.Remaining < 0 {
			out = append(out, b)
		}
	}
	return out, nil
}

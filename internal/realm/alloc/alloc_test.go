package alloc

import (
	"testing"
	"time"

	"xdmodfed/internal/realm/jobs"
	"xdmodfed/internal/shredder"
	"xdmodfed/internal/su"
	"xdmodfed/internal/warehouse"
)

var (
	winStart = time.Date(2017, 1, 1, 0, 0, 0, 0, time.UTC)
	winEnd   = time.Date(2018, 1, 1, 0, 0, 0, 0, time.UTC)
)

func setupDB(t *testing.T) *warehouse.DB {
	t.Helper()
	db := warehouse.Open("a")
	if _, err := jobs.Setup(db); err != nil {
		t.Fatal(err)
	}
	if err := Setup(db); err != nil {
		t.Fatal(err)
	}
	if err := Setup(db); err != nil {
		t.Fatalf("setup not idempotent: %v", err)
	}
	return db
}

func ingestJob(t *testing.T, db *warehouse.DB, id int64, project string, end time.Time, cores int64, hours float64) {
	t.Helper()
	conv := su.NewConverter()
	conv.Register("rush", 1.0)
	rec := shredder.JobRecord{
		LocalJobID: id, User: "u", Account: project, Resource: "rush", Queue: "q",
		Nodes: 1, Cores: cores,
		Submit: end.Add(-time.Duration(hours*float64(time.Hour)) - time.Minute),
		Start:  end.Add(-time.Duration(hours * float64(time.Hour))),
		End:    end,
	}
	row, err := jobs.FactFromRecord(rec, conv)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Insert(jobs.SchemaName, jobs.FactTable, row); err != nil {
		t.Fatal(err)
	}
}

func TestAllocationValidate(t *testing.T) {
	good := Allocation{Project: "p", Award: 1000, Start: winStart, End: winEnd}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Allocation{
		{Award: 1, Start: winStart, End: winEnd},
		{Project: "p", Start: winStart, End: winEnd},
		{Project: "p", Award: -1, Start: winStart, End: winEnd},
		{Project: "p", Award: 1, Start: winEnd, End: winStart},
		{Project: "p", Award: 1},
	}
	for i, a := range bad {
		if err := a.Validate(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestRealmInfoValid(t *testing.T) {
	if err := RealmInfo().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestChargeFromJobs(t *testing.T) {
	db := setupDB(t)
	if err := AddAllocation(db, Allocation{Project: "chem", Award: 10000, Start: winStart, End: winEnd}); err != nil {
		t.Fatal(err)
	}
	mid := time.Date(2017, 6, 1, 12, 0, 0, 0, time.UTC)
	ingestJob(t, db, 1, "chem", mid, 10, 10)                  // 100 XDSU, charged
	ingestJob(t, db, 2, "chem", mid, 10, 5)                   // 50 XDSU, charged
	ingestJob(t, db, 3, "bio", mid, 10, 10)                   // no allocation: not charged
	ingestJob(t, db, 4, "chem", winEnd.Add(time.Hour), 10, 1) // outside window

	n, err := ChargeFromJobs(db)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("charged %d jobs, want 2", n)
	}
	// Idempotent.
	if n, err = ChargeFromJobs(db); err != nil || n != 2 {
		t.Fatalf("re-run: n=%d err=%v", n, err)
	}
	if got := db.Count(SchemaName, ChargeTable); got != 2 {
		t.Errorf("charge rows = %d", got)
	}

	b, err := ProjectBalance(db, "chem", mid.AddDate(0, 1, 0))
	if err != nil {
		t.Fatal(err)
	}
	if b.Charged != 150 || b.Remaining != 9850 {
		t.Errorf("balance = %+v", b)
	}
	if b.BurnPerDay <= 0 || b.ProjectedExhaustion.IsZero() {
		t.Errorf("burn projection missing: %+v", b)
	}
	if _, err := ProjectBalance(db, "ghost", mid); err == nil {
		t.Error("unknown project should error")
	}
}

func TestOverspentProjects(t *testing.T) {
	db := setupDB(t)
	AddAllocation(db, Allocation{Project: "small", Award: 10, Start: winStart, End: winEnd})
	AddAllocation(db, Allocation{Project: "big", Award: 100000, Start: winStart, End: winEnd})
	mid := time.Date(2017, 3, 1, 0, 0, 0, 0, time.UTC)
	ingestJob(t, db, 1, "small", mid, 16, 10) // 160 XDSU against a 10 XDSU award
	ingestJob(t, db, 2, "big", mid, 16, 10)
	if _, err := ChargeFromJobs(db); err != nil {
		t.Fatal(err)
	}
	over, err := OverspentProjects(db, mid.AddDate(0, 1, 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(over) != 1 || over[0].Project != "small" || over[0].Remaining >= 0 {
		t.Errorf("overspent = %+v", over)
	}
}

func TestChargeWithoutSetup(t *testing.T) {
	db := warehouse.Open("x")
	if _, err := ChargeFromJobs(db); err == nil {
		t.Error("expected error without realm setup")
	}
	jobs.Setup(db)
	if _, err := ChargeFromJobs(db); err == nil {
		t.Error("expected error without alloc setup")
	}
}

func TestMultipleAwardsSameProject(t *testing.T) {
	db := setupDB(t)
	h1End := time.Date(2017, 7, 1, 0, 0, 0, 0, time.UTC)
	AddAllocation(db, Allocation{Project: "p", Award: 100, Start: winStart, End: h1End})
	AddAllocation(db, Allocation{Project: "p", Award: 200, Start: h1End, End: winEnd})
	ingestJob(t, db, 1, "p", time.Date(2017, 3, 1, 0, 0, 0, 0, time.UTC), 1, 10) // H1
	ingestJob(t, db, 2, "p", time.Date(2017, 9, 1, 0, 0, 0, 0, time.UTC), 1, 10) // H2
	n, err := ChargeFromJobs(db)
	if err != nil || n != 2 {
		t.Fatalf("n=%d err=%v", n, err)
	}
	b, err := ProjectBalance(db, "p", winEnd)
	if err != nil {
		t.Fatal(err)
	}
	if b.Award != 300 || b.Charged != 20 {
		t.Errorf("balance = %+v", b)
	}
}

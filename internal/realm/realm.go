// Package realm defines the shared vocabulary for XDMoD data realms.
// "The metrics collected by XDMoD are assembled into groups called
// realms, based on the type of information they measure" (paper §I-D):
// the HPC Jobs realm, the SUPReMM performance realm, and the new
// Storage and Cloud realms the paper introduces (§III). Each realm
// contributes a fact table, a set of metrics, and a set of dimensions
// for grouping and drill-down.
package realm

import (
	"fmt"
	"sort"
	"sync"

	"xdmodfed/internal/warehouse"
)

// Metric describes one chartable measure of a realm: an aggregate
// function over a fact-table column. When WeightColumn is set and Func
// is AggAvg the metric is a weighted average (e.g. "Average Memory
// Reserved Weighted By Wall Hours", paper §III-B footnote).
type Metric struct {
	ID           string
	Name         string
	Unit         string
	Func         warehouse.AggFunc
	Column       string
	WeightColumn string
	Scale        float64 // multiplier applied to the aggregate; 0 means 1 (e.g. 1/3600 to report seconds as hours)
}

// ScaleOr1 returns the metric's scale factor, defaulting to 1.
func (m Metric) ScaleOr1() float64 {
	if m.Scale == 0 {
		return 1
	}
	return m.Scale
}

// Dimension describes one group-by/drill-down axis. Numeric dimensions
// (wall time, job size, VM memory) are pre-binned into configured
// aggregation levels; categorical dimensions group by value.
type Dimension struct {
	ID      string
	Name    string
	Column  string
	Numeric bool
}

// Info is the static description of one realm.
type Info struct {
	Name       string // e.g. "Jobs", "Cloud", "Storage", "SUPReMM"
	Schema     string // warehouse schema holding the realm's tables
	FactTable  string // primary fact table
	TimeColumn string // fact column used for time bucketing
	Metrics    []Metric
	Dimensions []Dimension
}

// Metric returns the metric with the given ID.
func (i Info) Metric(id string) (Metric, bool) {
	for _, m := range i.Metrics {
		if m.ID == id {
			return m, true
		}
	}
	return Metric{}, false
}

// Dimension returns the dimension with the given ID.
func (i Info) Dimension(id string) (Dimension, bool) {
	for _, d := range i.Dimensions {
		if d.ID == id {
			return d, true
		}
	}
	return Dimension{}, false
}

// Validate checks the realm description for internal consistency.
func (i Info) Validate() error {
	if i.Name == "" || i.Schema == "" || i.FactTable == "" {
		return fmt.Errorf("realm: info missing name/schema/fact table: %+v", i)
	}
	if i.TimeColumn == "" {
		return fmt.Errorf("realm %s: missing time column", i.Name)
	}
	ids := map[string]bool{}
	for _, m := range i.Metrics {
		if m.ID == "" || m.Column == "" && m.Func != warehouse.AggCount {
			return fmt.Errorf("realm %s: metric %+v incomplete", i.Name, m)
		}
		if ids[m.ID] {
			return fmt.Errorf("realm %s: duplicate metric id %q", i.Name, m.ID)
		}
		ids[m.ID] = true
	}
	dids := map[string]bool{}
	for _, d := range i.Dimensions {
		if d.ID == "" || d.Column == "" {
			return fmt.Errorf("realm %s: dimension %+v incomplete", i.Name, d)
		}
		if dids[d.ID] {
			return fmt.Errorf("realm %s: duplicate dimension id %q", i.Name, d.ID)
		}
		dids[d.ID] = true
	}
	return nil
}

// Registry holds the realms an instance serves. Instances may enable
// different realm sets (the paper's optional-module model, §I-E).
type Registry struct {
	mu     sync.RWMutex
	realms map[string]Info
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{realms: make(map[string]Info)}
}

// Register adds a realm; duplicate names are rejected.
func (r *Registry) Register(info Info) error {
	if err := info.Validate(); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.realms[info.Name]; ok {
		return fmt.Errorf("realm: %q already registered", info.Name)
	}
	r.realms[info.Name] = info
	return nil
}

// Get returns the named realm.
func (r *Registry) Get(name string) (Info, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	i, ok := r.realms[name]
	return i, ok
}

// Names returns the sorted realm names.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.realms))
	for n := range r.realms {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Package gateway implements the Science Gateways realm. The paper's
// abstract lists science gateways among the resource types Open XDMoD
// has been extended to support: gateways (web portals such as
// CIPRES or nanoHUB) submit HPC jobs on behalf of community users
// under a shared gateway account, so center-side accounting sees one
// user where there may be thousands. This realm ingests gateway
// attribution records — which portal user was behind which HPC job —
// and reports per-gateway usage and community-user activity.
package gateway

import (
	"fmt"
	"time"

	"xdmodfed/internal/realm"
	"xdmodfed/internal/realm/jobs"
	"xdmodfed/internal/warehouse"
)

// Warehouse locations for the realm.
const (
	SchemaName = "modw_gateway"
	FactTable  = "gateway_submission"
)

// Submission is one gateway attribution record: a portal user ran one
// HPC job through a gateway.
type Submission struct {
	Gateway    string // gateway name, e.g. "cipres"
	PortalUser string // community username at the gateway
	Resource   string // HPC resource the job ran on
	JobID      int64  // local job id on that resource
	Submitted  time.Time
}

// Validate rejects malformed records.
func (s Submission) Validate() error {
	if s.Gateway == "" {
		return fmt.Errorf("gateway: submission missing gateway name")
	}
	if s.PortalUser == "" {
		return fmt.Errorf("gateway: submission via %q missing portal user", s.Gateway)
	}
	if s.Resource == "" || s.JobID <= 0 {
		return fmt.Errorf("gateway: submission via %q missing job identity", s.Gateway)
	}
	if s.Submitted.IsZero() {
		return fmt.Errorf("gateway: submission via %q missing timestamp", s.Gateway)
	}
	return nil
}

// Def returns the gateway fact table definition. cpu_hours and xdsu
// are denormalized from the Jobs realm at attribution time so gateway
// charts aggregate without joins.
func Def() warehouse.TableDef {
	return warehouse.TableDef{
		Name: FactTable,
		Columns: []warehouse.Column{
			{Name: "gateway", Type: warehouse.TypeString},
			{Name: "portal_user", Type: warehouse.TypeString},
			{Name: "resource", Type: warehouse.TypeString},
			{Name: "job_id", Type: warehouse.TypeInt},
			{Name: "submit_time", Type: warehouse.TypeTime},
			{Name: "cpu_hours", Type: warehouse.TypeFloat},
			{Name: "xdsu", Type: warehouse.TypeFloat},
			{Name: "month_key", Type: warehouse.TypeInt},
		},
		PrimaryKey: []string{"resource", "job_id"},
		Indexes:    [][]string{{"gateway"}},
	}
}

// Metric and dimension IDs.
const (
	MetricJobs     = "gateway_job_count"
	MetricCPUHours = "gateway_cpu_hours"
	MetricXDSU     = "gateway_su_charged"

	DimGateway    = "gateway"
	DimPortalUser = "portal_user"
	DimResource   = "resource"
)

// RealmInfo describes the Gateways realm.
func RealmInfo() realm.Info {
	return realm.Info{
		Name:       "Gateways",
		Schema:     SchemaName,
		FactTable:  FactTable,
		TimeColumn: "submit_time",
		Metrics: []realm.Metric{
			{ID: MetricJobs, Name: "Number of Gateway Jobs", Unit: "jobs", Func: warehouse.AggCount},
			{ID: MetricCPUHours, Name: "Gateway CPU Hours", Unit: "CPU Hour", Func: warehouse.AggSum, Column: "cpu_hours"},
			{ID: MetricXDSU, Name: "Gateway XD SUs Charged", Unit: "XD SU", Func: warehouse.AggSum, Column: "xdsu"},
		},
		Dimensions: []realm.Dimension{
			{ID: DimGateway, Name: "Gateway", Column: "gateway"},
			{ID: DimPortalUser, Name: "Gateway User", Column: "portal_user"},
			{ID: DimResource, Name: "Resource", Column: "resource"},
		},
	}
}

// Setup creates the realm's schema and fact table.
func Setup(db *warehouse.DB) (*warehouse.Table, error) {
	s := db.EnsureSchema(SchemaName)
	return s.EnsureTable(Def())
}

// Attribute records gateway submissions, denormalizing usage figures
// from the Jobs realm when the referenced job exists (submissions may
// arrive before the accounting record; usage backfills on re-run).
// Returns the number of submissions whose job was found.
func Attribute(db *warehouse.DB, subs []Submission) (matched int, err error) {
	if _, err := db.TableIn(SchemaName, FactTable); err != nil {
		return 0, fmt.Errorf("gateway: realm not set up: %w", err)
	}
	jobTab, err := db.TableIn(jobs.SchemaName, jobs.FactTable)
	if err != nil {
		return 0, fmt.Errorf("gateway: jobs realm not set up: %w", err)
	}
	for _, s := range subs {
		if err := s.Validate(); err != nil {
			return matched, err
		}
		row := map[string]any{
			"gateway":     s.Gateway,
			"portal_user": s.PortalUser,
			"resource":    s.Resource,
			"job_id":      s.JobID,
			"submit_time": s.Submitted,
			"cpu_hours":   0.0,
			"xdsu":        0.0,
			"month_key":   int64(s.Submitted.UTC().Year())*100 + int64(s.Submitted.UTC().Month()),
		}
		db.View(func() error {
			if jr, ok := jobTab.GetByKey(s.Resource, s.JobID); ok {
				row["cpu_hours"] = jr.Float(jobs.ColCPUHours)
				row["xdsu"] = jr.Float(jobs.ColXDSU)
				matched++
			}
			return nil
		})
		if err := db.Upsert(SchemaName, FactTable, row); err != nil {
			return matched, err
		}
	}
	return matched, nil
}

// CommunityUsers counts distinct portal users per gateway — the
// community-size figure gateways report to their funders.
func CommunityUsers(db *warehouse.DB) (map[string]int, error) {
	tab, err := db.TableIn(SchemaName, FactTable)
	if err != nil {
		return nil, err
	}
	seen := map[string]map[string]bool{}
	db.View(func() error {
		tab.Scan(func(r warehouse.Row) bool {
			g := r.String("gateway")
			if seen[g] == nil {
				seen[g] = map[string]bool{}
			}
			seen[g][r.String("portal_user")] = true
			return true
		})
		return nil
	})
	out := make(map[string]int, len(seen))
	for g, users := range seen {
		out[g] = len(users)
	}
	return out, nil
}

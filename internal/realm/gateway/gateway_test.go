package gateway

import (
	"testing"
	"time"

	"xdmodfed/internal/realm/jobs"
	"xdmodfed/internal/shredder"
	"xdmodfed/internal/warehouse"
)

var subTime = time.Date(2017, 5, 1, 10, 0, 0, 0, time.UTC)

func setupDB(t *testing.T) *warehouse.DB {
	t.Helper()
	db := warehouse.Open("g")
	if _, err := jobs.Setup(db); err != nil {
		t.Fatal(err)
	}
	if _, err := Setup(db); err != nil {
		t.Fatal(err)
	}
	return db
}

func addJob(t *testing.T, db *warehouse.DB, id int64) {
	t.Helper()
	rec := shredder.JobRecord{
		LocalJobID: id, User: "gateway_svc", Account: "gw", Resource: "comet", Queue: "shared",
		Nodes: 1, Cores: 4,
		Submit: subTime, Start: subTime.Add(10 * time.Minute), End: subTime.Add(70 * time.Minute),
	}
	row, err := jobs.FactFromRecord(rec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Insert(jobs.SchemaName, jobs.FactTable, row); err != nil {
		t.Fatal(err)
	}
}

func TestRealmInfoValid(t *testing.T) {
	if err := RealmInfo().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSubmissionValidate(t *testing.T) {
	good := Submission{Gateway: "cipres", PortalUser: "biologist42", Resource: "comet", JobID: 1, Submitted: subTime}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Submission{
		{},
		{Gateway: "g", Resource: "r", JobID: 1, Submitted: subTime},
		{Gateway: "g", PortalUser: "u", JobID: 1, Submitted: subTime},
		{Gateway: "g", PortalUser: "u", Resource: "r", Submitted: subTime},
		{Gateway: "g", PortalUser: "u", Resource: "r", JobID: 1},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestAttributeAndBackfill(t *testing.T) {
	db := setupDB(t)
	addJob(t, db, 100)
	subs := []Submission{
		{Gateway: "cipres", PortalUser: "alice", Resource: "comet", JobID: 100, Submitted: subTime},
		{Gateway: "cipres", PortalUser: "bob", Resource: "comet", JobID: 200, Submitted: subTime}, // job not yet accounted
	}
	matched, err := Attribute(db, subs)
	if err != nil {
		t.Fatal(err)
	}
	if matched != 1 {
		t.Fatalf("matched %d, want 1", matched)
	}
	tab, _ := db.TableIn(SchemaName, FactTable)
	db.View(func() error {
		r, ok := tab.GetByKey("comet", int64(100))
		if !ok || r.Float("cpu_hours") != 4.0 { // 4 cores * 1h
			t.Errorf("denormalized usage wrong: %v", r.Values())
		}
		r2, _ := tab.GetByKey("comet", int64(200))
		if r2.Float("cpu_hours") != 0 {
			t.Error("unmatched job should have zero usage")
		}
		return nil
	})

	// Accounting arrives later; re-attribution backfills usage.
	addJob(t, db, 200)
	matched, err = Attribute(db, subs)
	if err != nil || matched != 2 {
		t.Fatalf("backfill: matched=%d err=%v", matched, err)
	}
	db.View(func() error {
		r, _ := tab.GetByKey("comet", int64(200))
		if r.Float("cpu_hours") != 4.0 {
			t.Errorf("backfill failed: %v", r.Values())
		}
		return nil
	})
	if db.Count(SchemaName, FactTable) != 2 {
		t.Errorf("fact rows = %d (upsert must not duplicate)", db.Count(SchemaName, FactTable))
	}
}

func TestAttributeValidation(t *testing.T) {
	db := setupDB(t)
	if _, err := Attribute(db, []Submission{{}}); err == nil {
		t.Error("invalid submission accepted")
	}
	bare := warehouse.Open("bare")
	if _, err := Attribute(bare, nil); err == nil {
		t.Error("missing realm setup accepted")
	}
}

func TestCommunityUsers(t *testing.T) {
	db := setupDB(t)
	subs := []Submission{
		{Gateway: "cipres", PortalUser: "a", Resource: "comet", JobID: 1, Submitted: subTime},
		{Gateway: "cipres", PortalUser: "b", Resource: "comet", JobID: 2, Submitted: subTime},
		{Gateway: "cipres", PortalUser: "a", Resource: "comet", JobID: 3, Submitted: subTime},
		{Gateway: "nanohub", PortalUser: "z", Resource: "comet", JobID: 4, Submitted: subTime},
	}
	if _, err := Attribute(db, subs); err != nil {
		t.Fatal(err)
	}
	users, err := CommunityUsers(db)
	if err != nil {
		t.Fatal(err)
	}
	if users["cipres"] != 2 || users["nanohub"] != 1 {
		t.Errorf("community users = %v", users)
	}
}

package perf

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"xdmodfed/internal/warehouse"
)

func series(jobID int64, n int, seed int64) JobTimeseries {
	rng := rand.New(rand.NewSource(seed))
	ts := JobTimeseries{
		JobID: jobID, Resource: "rush",
		Start:  time.Date(2017, 7, 1, 0, 0, 0, 0, time.UTC),
		Script: "#!/bin/bash\nsrun ./a.out\n",
	}
	for i := 0; i < n; i++ {
		s := Sample{JobID: jobID, Resource: "rush", Offset: time.Duration(i) * 30 * time.Second}
		for j := range s.Values {
			s.Values[j] = rng.Float64() * 100
		}
		ts.Samples = append(ts.Samples, s)
	}
	return ts
}

func TestRealmInfoValid(t *testing.T) {
	info := RealmInfo()
	if err := info.Validate(); err != nil {
		t.Fatal(err)
	}
	// 1 count metric + avg and peak per each of the nine metrics.
	if len(info.Metrics) != 1+2*NumMetrics {
		t.Errorf("metric count = %d", len(info.Metrics))
	}
}

func TestNineMetrics(t *testing.T) {
	if len(MetricNames) != NumMetrics || NumMetrics != 9 {
		t.Fatalf("the paper specifies nine job metrics; have %d", len(MetricNames))
	}
}

func TestSummarize(t *testing.T) {
	ts := JobTimeseries{
		JobID: 1, Resource: "r", Start: time.Now(),
		Samples: []Sample{
			{Values: [NumMetrics]float64{10, 0, 1, 2, 3, 4, 5, 6, 7}},
			{Values: [NumMetrics]float64{30, 0, 3, 2, 3, 4, 5, 6, 7}},
		},
	}
	sum, err := Summarize(ts)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Avg[0] != 20 || sum.Peak[0] != 30 {
		t.Errorf("cpu_user avg/peak = %g/%g", sum.Avg[0], sum.Peak[0])
	}
	if sum.Avg[2] != 2 || sum.Peak[2] != 3 {
		t.Errorf("memory avg/peak = %g/%g", sum.Avg[2], sum.Peak[2])
	}
	if sum.NSamples != 2 {
		t.Errorf("n = %d", sum.NSamples)
	}
}

func TestSummarizeRejectsEmpty(t *testing.T) {
	if _, err := Summarize(JobTimeseries{JobID: 1, Resource: "r"}); err == nil {
		t.Error("no samples must error")
	}
	if _, err := Summarize(JobTimeseries{Resource: "r", Samples: []Sample{{}}}); err == nil {
		t.Error("missing id must error")
	}
}

func TestStoreJobAndFederationSplit(t *testing.T) {
	db := warehouse.Open("p")
	if err := Setup(db); err != nil {
		t.Fatal(err)
	}
	ts := series(42, 20, 1)
	if err := StoreJob(db, ts); err != nil {
		t.Fatal(err)
	}
	if got := db.Count(SchemaName, TimeseriesTable); got != 20 {
		t.Errorf("timeseries rows = %d", got)
	}
	if got := db.Count(SchemaName, ScriptTable); got != 1 {
		t.Errorf("script rows = %d", got)
	}
	if got := db.Count(SchemaName, SummaryTable); got != 1 {
		t.Errorf("summary rows = %d", got)
	}
	// Federation split: only the summary federates.
	fed := FederatedTables()
	if len(fed) != 1 || fed[0] != SummaryTable {
		t.Errorf("federated tables = %v", fed)
	}
	only := SatelliteOnlyTables()
	if len(only) != 2 {
		t.Errorf("satellite-only tables = %v", only)
	}
	// Re-storing the same job must not duplicate summaries (upsert).
	if err := StoreSummary(db, mustSummarize(t, ts)); err != nil {
		t.Fatal(err)
	}
	if got := db.Count(SchemaName, SummaryTable); got != 1 {
		t.Errorf("summary rows after re-store = %d", got)
	}
}

func mustSummarize(t *testing.T, ts JobTimeseries) Summary {
	t.Helper()
	s, err := Summarize(ts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestPropertySummaryBounds: avg is always within [min observed, peak],
// and peak equals the true maximum.
func TestPropertySummaryBounds(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		if n == 0 {
			return true
		}
		ts := series(7, int(n), seed)
		sum, err := Summarize(ts)
		if err != nil {
			return false
		}
		for m := 0; m < NumMetrics; m++ {
			truePeak := ts.Samples[0].Values[m]
			for _, s := range ts.Samples {
				if s.Values[m] > truePeak {
					truePeak = s.Values[m]
				}
			}
			if sum.Peak[m] != truePeak {
				return false
			}
			if sum.Avg[m] > sum.Peak[m]+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Package perf implements the SUPReMM performance realm: job-level
// performance data collected from system hardware counters (paper
// §I-D, §I-E). Each job carries timeseries of nine metrics over its
// lifetime plus its job script — data the paper calls
// "storage-intensive and quite detailed" (§II-C5). Because replicating
// that detail "runs counter to the goal of federation", only the
// per-job summary table is marked for federation; the raw timeseries
// and scripts stay on the satellite.
package perf

import (
	"fmt"
	"math"
	"time"

	"xdmodfed/internal/realm"
	"xdmodfed/internal/warehouse"
)

// Warehouse locations. TimeseriesTable and ScriptTable hold the
// detailed satellite-only data; SummaryTable is the federated form.
const (
	SchemaName      = "modw_supremm"
	TimeseriesTable = "job_timeseries"
	ScriptTable     = "job_scripts"
	SummaryTable    = "job_summary"
)

// MetricNames are the nine per-job timeseries metrics the paper
// enumerates examples of (CPU user, memory bandwidth, ...).
var MetricNames = []string{
	"cpu_user",
	"cpu_idle",
	"memory_used",
	"memory_bandwidth",
	"io_read_rate",
	"io_write_rate",
	"net_rx_rate",
	"net_tx_rate",
	"flops",
}

// NumMetrics is the number of per-job timeseries metrics.
const NumMetrics = 9

// Sample is one timeseries point for one job: the nine metric values
// at one offset into the job's life.
type Sample struct {
	JobID    int64
	Resource string
	Offset   time.Duration // since job start
	Values   [NumMetrics]float64
}

// JobTimeseries is the full per-job detail: samples plus job script.
type JobTimeseries struct {
	JobID    int64
	Resource string
	Start    time.Time
	Samples  []Sample
	Script   string
}

// Summary is the compact per-job form that federates: average and peak
// of each metric over the job's life.
type Summary struct {
	JobID    int64
	Resource string
	Start    time.Time
	Avg      [NumMetrics]float64
	Peak     [NumMetrics]float64
	NSamples int64
}

// Summarize reduces a job's timeseries to its summary.
func Summarize(ts JobTimeseries) (Summary, error) {
	if ts.JobID <= 0 || ts.Resource == "" {
		return Summary{}, fmt.Errorf("perf: timeseries missing job identity")
	}
	if len(ts.Samples) == 0 {
		return Summary{}, fmt.Errorf("perf: job %d has no samples", ts.JobID)
	}
	sum := Summary{JobID: ts.JobID, Resource: ts.Resource, Start: ts.Start, NSamples: int64(len(ts.Samples))}
	for i := range sum.Peak {
		sum.Peak[i] = math.Inf(-1)
	}
	for _, s := range ts.Samples {
		for i, v := range s.Values {
			sum.Avg[i] += v
			if v > sum.Peak[i] {
				sum.Peak[i] = v
			}
		}
	}
	for i := range sum.Avg {
		sum.Avg[i] /= float64(len(ts.Samples))
	}
	return sum, nil
}

// TimeseriesDef returns the raw timeseries table definition.
func TimeseriesDef() warehouse.TableDef {
	cols := []warehouse.Column{
		{Name: "job_id", Type: warehouse.TypeInt},
		{Name: "resource", Type: warehouse.TypeString},
		{Name: "offset_sec", Type: warehouse.TypeFloat},
	}
	for _, m := range MetricNames {
		cols = append(cols, warehouse.Column{Name: m, Type: warehouse.TypeFloat})
	}
	return warehouse.TableDef{
		Name:    TimeseriesTable,
		Columns: cols,
		Indexes: [][]string{{"resource", "job_id"}},
	}
}

// ScriptDef returns the job-script table definition.
func ScriptDef() warehouse.TableDef {
	return warehouse.TableDef{
		Name: ScriptTable,
		Columns: []warehouse.Column{
			{Name: "job_id", Type: warehouse.TypeInt},
			{Name: "resource", Type: warehouse.TypeString},
			{Name: "script", Type: warehouse.TypeString},
		},
		PrimaryKey: []string{"resource", "job_id"},
	}
}

// SummaryDef returns the federated summary table definition.
func SummaryDef() warehouse.TableDef {
	cols := []warehouse.Column{
		{Name: "job_id", Type: warehouse.TypeInt},
		{Name: "resource", Type: warehouse.TypeString},
		{Name: "start_time", Type: warehouse.TypeTime},
		{Name: "n_samples", Type: warehouse.TypeInt},
		{Name: "month_key", Type: warehouse.TypeInt},
	}
	for _, m := range MetricNames {
		cols = append(cols,
			warehouse.Column{Name: "avg_" + m, Type: warehouse.TypeFloat},
			warehouse.Column{Name: "peak_" + m, Type: warehouse.TypeFloat},
		)
	}
	return warehouse.TableDef{
		Name:       SummaryTable,
		Columns:    cols,
		PrimaryKey: []string{"resource", "job_id"},
		Indexes:    [][]string{{"month_key"}},
	}
}

// Setup creates the realm's schema and all three tables.
func Setup(db *warehouse.DB) error {
	s := db.EnsureSchema(SchemaName)
	for _, def := range []warehouse.TableDef{TimeseriesDef(), ScriptDef(), SummaryDef()} {
		if _, err := s.EnsureTable(def); err != nil {
			return err
		}
	}
	return nil
}

// StoreJob writes a job's detailed timeseries, script and derived
// summary into the warehouse.
func StoreJob(db *warehouse.DB, ts JobTimeseries) error {
	sum, err := Summarize(ts)
	if err != nil {
		return err
	}
	for _, s := range ts.Samples {
		row := map[string]any{
			"job_id":     s.JobID,
			"resource":   s.Resource,
			"offset_sec": s.Offset.Seconds(),
		}
		for i, m := range MetricNames {
			row[m] = s.Values[i]
		}
		if err := db.Insert(SchemaName, TimeseriesTable, row); err != nil {
			return err
		}
	}
	if ts.Script != "" {
		err := db.Upsert(SchemaName, ScriptTable, map[string]any{
			"job_id": ts.JobID, "resource": ts.Resource, "script": ts.Script,
		})
		if err != nil {
			return err
		}
	}
	return StoreSummary(db, sum)
}

// StoreSummary writes one job summary row.
func StoreSummary(db *warehouse.DB, sum Summary) error {
	row := map[string]any{
		"job_id":     sum.JobID,
		"resource":   sum.Resource,
		"start_time": sum.Start,
		"n_samples":  sum.NSamples,
		"month_key":  int64(sum.Start.UTC().Year())*100 + int64(sum.Start.UTC().Month()),
	}
	for i, m := range MetricNames {
		row["avg_"+m] = sum.Avg[i]
		row["peak_"+m] = sum.Peak[i]
	}
	return db.Upsert(SchemaName, SummaryTable, row)
}

// RealmInfo describes the SUPReMM realm over the summary table.
func RealmInfo() realm.Info {
	info := realm.Info{
		Name:       "SUPReMM",
		Schema:     SchemaName,
		FactTable:  SummaryTable,
		TimeColumn: "start_time",
		Dimensions: []realm.Dimension{
			{ID: "resource", Name: "Resource", Column: "resource"},
		},
	}
	info.Metrics = append(info.Metrics, realm.Metric{
		ID: "job_count", Name: "Number of Jobs Profiled", Unit: "jobs", Func: warehouse.AggCount,
	})
	for _, m := range MetricNames {
		info.Metrics = append(info.Metrics,
			realm.Metric{ID: "avg_" + m, Name: "Avg " + m, Unit: "value", Func: warehouse.AggAvg, Column: "avg_" + m},
			realm.Metric{ID: "peak_" + m, Name: "Peak " + m, Unit: "value", Func: warehouse.AggMax, Column: "peak_" + m},
		)
	}
	return info
}

// FederatedTables lists the realm tables that replicate to a hub: only
// the summary (paper §II-C5: "we plan to replicate summarized
// performance data to the federated hub database").
func FederatedTables() []string { return []string{SummaryTable} }

// SatelliteOnlyTables lists the detail tables that never federate.
func SatelliteOnlyTables() []string { return []string{TimeseriesTable, ScriptTable} }

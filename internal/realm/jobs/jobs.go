// Package jobs implements the HPC Jobs realm, XDMoD's original and
// primary realm: metrics "gleaned largely from job accounting data"
// (paper §I-D) — job counts, CPU hours, wall times, wait times, job
// sizes, and XD-SU charges — with dimensions for resource, user, PI,
// and queue. This is also the only realm replicated to the federation
// hub in the paper's initial federation release (§II-C1).
package jobs

import (
	"fmt"
	"time"

	"xdmodfed/internal/realm"
	"xdmodfed/internal/shredder"
	"xdmodfed/internal/su"
	"xdmodfed/internal/warehouse"
)

// Warehouse locations for the realm.
const (
	SchemaName = "modw" // XDMoD's aggregate warehouse schema name
	FactTable  = "jobfact"
)

// Fact-table column names.
const (
	ColJobID    = "job_id"
	ColResource = "resource"
	ColUser     = "username"
	ColPI       = "pi"
	ColQueue    = "queue"
	ColNodes    = "nodes"
	ColCores    = "cores"
	ColSubmit   = "submit_time"
	ColStart    = "start_time"
	ColEnd      = "end_time"
	ColWallSec  = "wall_seconds"
	ColWaitSec  = "wait_seconds"
	ColCPUHours = "cpu_hours"
	ColXDSU     = "xdsu_charged"
	ColExit     = "exit_state"
	ColDayKey   = "day_key"   // YYYYMMDD of end time
	ColMonthKey = "month_key" // YYYYMM of end time
)

// Def returns the jobfact table definition.
func Def() warehouse.TableDef {
	return warehouse.TableDef{
		Name: FactTable,
		Columns: []warehouse.Column{
			{Name: ColJobID, Type: warehouse.TypeInt},
			{Name: ColResource, Type: warehouse.TypeString},
			{Name: ColUser, Type: warehouse.TypeString},
			{Name: ColPI, Type: warehouse.TypeString},
			{Name: ColQueue, Type: warehouse.TypeString},
			{Name: ColNodes, Type: warehouse.TypeInt},
			{Name: ColCores, Type: warehouse.TypeInt},
			{Name: ColSubmit, Type: warehouse.TypeTime},
			{Name: ColStart, Type: warehouse.TypeTime},
			{Name: ColEnd, Type: warehouse.TypeTime},
			{Name: ColWallSec, Type: warehouse.TypeFloat},
			{Name: ColWaitSec, Type: warehouse.TypeFloat},
			{Name: ColCPUHours, Type: warehouse.TypeFloat},
			{Name: ColXDSU, Type: warehouse.TypeFloat},
			{Name: ColExit, Type: warehouse.TypeString, Nullable: true},
			{Name: ColDayKey, Type: warehouse.TypeInt},
			{Name: ColMonthKey, Type: warehouse.TypeInt},
		},
		PrimaryKey: []string{ColResource, ColJobID},
		Indexes:    [][]string{{ColResource}, {ColMonthKey}},
	}
}

// Metric and dimension IDs.
const (
	MetricNumJobs      = "job_count"
	MetricCPUHours     = "total_cpu_hours"
	MetricWallHours    = "total_wall_hours"
	MetricXDSU         = "total_su_charged"
	MetricAvgWaitHours = "avg_waitduration_hours"
	MetricAvgJobSize   = "avg_job_size"
	MetricMaxJobSize   = "max_job_size"

	DimResource = "resource"
	DimUser     = "person"
	DimPI       = "pi"
	DimQueue    = "queue"
	DimWallTime = "job_wall_time"
	DimJobSize  = "job_size"
)

// RealmInfo describes the Jobs realm for registries and the REST API.
func RealmInfo() realm.Info {
	return realm.Info{
		Name:       "Jobs",
		Schema:     SchemaName,
		FactTable:  FactTable,
		TimeColumn: ColEnd,
		Metrics: []realm.Metric{
			{ID: MetricNumJobs, Name: "Number of Jobs Ended", Unit: "jobs", Func: warehouse.AggCount},
			{ID: MetricCPUHours, Name: "CPU Hours: Total", Unit: "CPU Hour", Func: warehouse.AggSum, Column: ColCPUHours},
			{ID: MetricWallHours, Name: "Wall Hours: Total", Unit: "Hour", Func: warehouse.AggSum, Column: ColWallSec, Scale: 1.0 / 3600},
			{ID: MetricXDSU, Name: "XD SUs Charged: Total", Unit: "XD SU", Func: warehouse.AggSum, Column: ColXDSU},
			{ID: MetricAvgWaitHours, Name: "Wait Hours: Per Job", Unit: "Hour", Func: warehouse.AggAvg, Column: ColWaitSec, Scale: 1.0 / 3600},
			{ID: MetricAvgJobSize, Name: "Job Size: Per Job", Unit: "Core Count", Func: warehouse.AggAvg, Column: ColCores},
			{ID: MetricMaxJobSize, Name: "Job Size: Max", Unit: "Core Count", Func: warehouse.AggMax, Column: ColCores},
		},
		Dimensions: []realm.Dimension{
			{ID: DimResource, Name: "Resource", Column: ColResource},
			{ID: DimUser, Name: "User", Column: ColUser},
			{ID: DimPI, Name: "PI", Column: ColPI},
			{ID: DimQueue, Name: "Queue", Column: ColQueue},
			{ID: DimWallTime, Name: "Job Wall Time", Column: ColWallSec, Numeric: true},
			{ID: DimJobSize, Name: "Job Size", Column: ColCores, Numeric: true},
		},
	}
}

// Setup creates the realm's schema and fact table in the warehouse.
func Setup(db *warehouse.DB) (*warehouse.Table, error) {
	s := db.EnsureSchema(SchemaName)
	return s.EnsureTable(Def())
}

// DayKey returns the YYYYMMDD integer key of t (UTC).
func DayKey(t time.Time) int64 {
	t = t.UTC()
	return int64(t.Year())*10000 + int64(t.Month())*100 + int64(t.Day())
}

// MonthKey returns the YYYYMM integer key of t (UTC).
func MonthKey(t time.Time) int64 {
	t = t.UTC()
	return int64(t.Year())*100 + int64(t.Month())
}

// FactRowFromRecord converts a staging record into a positional
// jobfact row (Def column order), applying the XD SU conversion for
// the record's resource. The positional form inserts straight into the
// columnar fact table without a name-resolution map per record.
func FactRowFromRecord(rec shredder.JobRecord, conv *su.Converter) ([]any, error) {
	if err := rec.Validate(); err != nil {
		return nil, err
	}
	cpuh := rec.CPUHours()
	xdsu := 0.0
	if conv != nil {
		v, err := conv.ToXDSU(rec.Resource, cpuh)
		if err != nil {
			return nil, fmt.Errorf("jobs: %w", err)
		}
		xdsu = v
	}
	return []any{
		rec.LocalJobID,
		rec.Resource,
		rec.User,
		rec.Account,
		rec.Queue,
		rec.Nodes,
		rec.Cores,
		rec.Submit,
		rec.Start,
		rec.End,
		rec.Wall().Seconds(),
		rec.Wait().Seconds(),
		cpuh,
		xdsu,
		rec.ExitState,
		DayKey(rec.End),
		MonthKey(rec.End),
	}, nil
}

// FactFromRecord converts a staging record into a named jobfact row,
// applying the XD SU conversion for the record's resource.
func FactFromRecord(rec shredder.JobRecord, conv *su.Converter) (map[string]any, error) {
	vals, err := FactRowFromRecord(rec, conv)
	if err != nil {
		return nil, err
	}
	def := Def()
	row := make(map[string]any, len(vals))
	for i, c := range def.Columns {
		row[c.Name] = vals[i]
	}
	return row, nil
}

package jobs

import (
	"testing"
	"time"

	"xdmodfed/internal/shredder"
	"xdmodfed/internal/su"
	"xdmodfed/internal/warehouse"
)

func record() shredder.JobRecord {
	return shredder.JobRecord{
		LocalJobID: 100, JobName: "sim", User: "alice", Account: "chem", Resource: "comet",
		Queue: "compute", Nodes: 2, Cores: 48,
		Submit:    time.Date(2017, 6, 1, 8, 0, 0, 0, time.UTC),
		Start:     time.Date(2017, 6, 1, 9, 0, 0, 0, time.UTC),
		End:       time.Date(2017, 6, 1, 11, 0, 0, 0, time.UTC),
		ExitState: "COMPLETED",
	}
}

func TestRealmInfoValid(t *testing.T) {
	if err := RealmInfo().Validate(); err != nil {
		t.Fatalf("realm info invalid: %v", err)
	}
}

func TestDayMonthKeys(t *testing.T) {
	ts := time.Date(2017, 11, 3, 23, 59, 0, 0, time.UTC)
	if got := DayKey(ts); got != 20171103 {
		t.Errorf("DayKey = %d", got)
	}
	if got := MonthKey(ts); got != 201711 {
		t.Errorf("MonthKey = %d", got)
	}
	// Non-UTC times normalize to UTC.
	est := time.FixedZone("EST", -5*3600)
	ts2 := time.Date(2017, 12, 31, 22, 0, 0, 0, est) // = 2018-01-01 03:00 UTC
	if got := MonthKey(ts2); got != 201801 {
		t.Errorf("MonthKey across zone = %d, want 201801", got)
	}
}

func TestFactFromRecord(t *testing.T) {
	conv := su.NewConverter()
	conv.Register("comet", 0.8)
	row, err := FactFromRecord(record(), conv)
	if err != nil {
		t.Fatal(err)
	}
	if row[ColWallSec] != 7200.0 {
		t.Errorf("wall = %v", row[ColWallSec])
	}
	if row[ColWaitSec] != 3600.0 {
		t.Errorf("wait = %v", row[ColWaitSec])
	}
	if row[ColCPUHours] != 96.0 { // 48 cores * 2 h
		t.Errorf("cpu hours = %v", row[ColCPUHours])
	}
	if xdsu := row[ColXDSU].(float64); xdsu < 76.8-1e-9 || xdsu > 76.8+1e-9 {
		t.Errorf("xdsu = %v", row[ColXDSU])
	}
	if row[ColDayKey] != int64(20170601) || row[ColMonthKey] != int64(201706) {
		t.Errorf("keys = %v %v", row[ColDayKey], row[ColMonthKey])
	}
}

func TestFactFromRecordUnknownResource(t *testing.T) {
	conv := su.NewConverter()
	if _, err := FactFromRecord(record(), conv); err == nil {
		t.Error("unknown resource must error (no silent identity conversion)")
	}
}

func TestFactFromRecordNilConverter(t *testing.T) {
	row, err := FactFromRecord(record(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if row[ColXDSU] != 0.0 {
		t.Errorf("xdsu without converter = %v, want 0", row[ColXDSU])
	}
}

func TestFactFromRecordInvalid(t *testing.T) {
	rec := record()
	rec.User = ""
	if _, err := FactFromRecord(rec, nil); err == nil {
		t.Error("invalid record must be rejected")
	}
}

func TestSetupAndInsert(t *testing.T) {
	db := warehouse.Open("x")
	tab, err := Setup(db)
	if err != nil {
		t.Fatal(err)
	}
	// Setup is idempotent.
	if _, err := Setup(db); err != nil {
		t.Fatalf("second Setup: %v", err)
	}
	row, _ := FactFromRecord(record(), nil)
	if err := db.Insert(SchemaName, FactTable, row); err != nil {
		t.Fatal(err)
	}
	db.View(func() error {
		r, ok := tab.GetByKey("comet", int64(100))
		if !ok {
			t.Fatal("fact row not found by (resource, job_id)")
		}
		if r.String(ColUser) != "alice" {
			t.Errorf("user = %q", r.String(ColUser))
		}
		return nil
	})
	// Same job id on a different resource must not collide.
	rec2 := record()
	rec2.Resource = "stampede"
	row2, _ := FactFromRecord(rec2, nil)
	if err := db.Insert(SchemaName, FactTable, row2); err != nil {
		t.Fatalf("cross-resource id collision: %v", err)
	}
}

package cloud

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"xdmodfed/internal/warehouse"
)

var t0 = time.Date(2017, 4, 1, 0, 0, 0, 0, time.UTC)

func ev(vm string, typ EventType, offsetH float64, cores int64, memGB float64) Event {
	return Event{
		VMID: vm, Resource: "lakeeffect", User: "u", Project: "p", InstanceType: "m1",
		Type: typ, Time: t0.Add(time.Duration(offsetH * float64(time.Hour))),
		Cores: cores, MemoryGB: memGB,
	}
}

func TestRealmInfoValid(t *testing.T) {
	if err := RealmInfo().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSimpleLifecycle(t *testing.T) {
	events := []Event{
		ev("vm1", EvRequest, 0, 2, 4),
		ev("vm1", EvStart, 1, 2, 4),
		ev("vm1", EvStop, 5, 2, 4),
	}
	sessions, err := ReconstructSessions(events, t0.Add(24*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if len(sessions) != 1 {
		t.Fatalf("got %d sessions, want 1", len(sessions))
	}
	s := sessions[0]
	if s.Wall() != 4*time.Hour || s.CoreHours() != 8 {
		t.Errorf("wall %v core-hours %g", s.Wall(), s.CoreHours())
	}
	if !s.Ended || s.Terminated {
		t.Errorf("flags wrong: %+v", s)
	}
}

func TestStopResumeProducesTwoSessions(t *testing.T) {
	events := []Event{
		ev("vm1", EvStart, 0, 1, 2),
		ev("vm1", EvStop, 2, 1, 2),
		ev("vm1", EvResume, 10, 1, 2),
		ev("vm1", EvTerminate, 13, 1, 2),
	}
	sessions, err := ReconstructSessions(events, t0.Add(24*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if len(sessions) != 2 {
		t.Fatalf("got %d sessions, want 2", len(sessions))
	}
	if sessions[0].Wall() != 2*time.Hour || sessions[1].Wall() != 3*time.Hour {
		t.Errorf("walls: %v %v", sessions[0].Wall(), sessions[1].Wall())
	}
	if !sessions[1].Terminated {
		t.Error("final session should be terminated")
	}
	// The VM's wall time (5h) differs from any single job's runtime —
	// the paper's point that VM wall time != job wall time.
	var totalWall time.Duration
	for _, s := range sessions {
		totalWall += s.Wall()
	}
	if totalWall != 5*time.Hour {
		t.Errorf("total VM wall = %v, want 5h", totalWall)
	}
}

func TestResizeSplitsSession(t *testing.T) {
	events := []Event{
		ev("vm1", EvStart, 0, 2, 4),
		ev("vm1", EvResize, 4, 8, 16), // grows mid-life
		ev("vm1", EvStop, 6, 8, 16),
	}
	sessions, err := ReconstructSessions(events, t0.Add(24*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if len(sessions) != 2 {
		t.Fatalf("got %d sessions, want 2", len(sessions))
	}
	if sessions[0].Cores != 2 || sessions[1].Cores != 8 {
		t.Errorf("cores: %d then %d", sessions[0].Cores, sessions[1].Cores)
	}
	if sessions[0].MemoryGB != 4 || sessions[1].MemoryGB != 16 {
		t.Errorf("memory: %g then %g", sessions[0].MemoryGB, sessions[1].MemoryGB)
	}
	// Core hours reflect each configuration's span: 2*4 + 8*2 = 24.
	total := sessions[0].CoreHours() + sessions[1].CoreHours()
	if total != 24 {
		t.Errorf("total core hours = %g, want 24", total)
	}
}

func TestRunningAtHorizon(t *testing.T) {
	events := []Event{ev("vm1", EvStart, 0, 1, 1)}
	sessions, err := ReconstructSessions(events, t0.Add(10*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if len(sessions) != 1 || sessions[0].Ended {
		t.Fatalf("running VM should yield one open session: %+v", sessions)
	}
	if sessions[0].Wall() != 10*time.Hour {
		t.Errorf("wall to horizon = %v", sessions[0].Wall())
	}
}

func TestDuplicateAndOutOfProtocolEvents(t *testing.T) {
	events := []Event{
		ev("vm1", EvStop, 0, 1, 1), // stop while stopped: ignored
		ev("vm1", EvStart, 1, 1, 1),
		ev("vm1", EvStart, 2, 4, 4), // duplicate start: ignored (keeps first config)
		ev("vm1", EvStop, 3, 1, 1),
		ev("vm1", EvTerminate, 4, 1, 1), // terminate while stopped: no session
	}
	sessions, err := ReconstructSessions(events, t0.Add(24*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if len(sessions) != 1 {
		t.Fatalf("got %d sessions, want 1", len(sessions))
	}
	if sessions[0].Cores != 1 || sessions[0].Wall() != 2*time.Hour {
		t.Errorf("session: %+v", sessions[0])
	}
}

func TestUnorderedEventsAreSorted(t *testing.T) {
	events := []Event{
		ev("vm1", EvStop, 5, 2, 4),
		ev("vm1", EvStart, 1, 2, 4),
	}
	sessions, err := ReconstructSessions(events, t0.Add(24*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if len(sessions) != 1 || sessions[0].Wall() != 4*time.Hour {
		t.Fatalf("unordered events mishandled: %+v", sessions)
	}
}

func TestInvalidEventRejected(t *testing.T) {
	bad := []Event{
		{},
		{VMID: "v", Type: EvStart, Time: t0}, // no resource
		{VMID: "v", Resource: "r", Type: "EXPLODE", Time: t0},             // bad type
		{VMID: "v", Resource: "r", Type: EvStart},                         // no time
		{VMID: "v", Resource: "r", Type: EvStart, Time: t0, Cores: -1},    // negative
		{VMID: "v", Resource: "r", Type: EvStart, Time: t0, MemoryGB: -3}, // negative
	}
	for i, e := range bad {
		if _, err := ReconstructSessions([]Event{e}, t0); err == nil {
			t.Errorf("case %d: expected error for %+v", i, e)
		}
	}
}

func TestMultipleVMsIndependent(t *testing.T) {
	events := []Event{
		ev("a", EvStart, 0, 1, 1),
		ev("b", EvStart, 1, 2, 2),
		ev("a", EvStop, 2, 1, 1),
		ev("b", EvTerminate, 3, 2, 2),
	}
	sessions, err := ReconstructSessions(events, t0.Add(24*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if len(sessions) != 2 {
		t.Fatalf("got %d sessions", len(sessions))
	}
	if sessions[0].VMID != "a" || sessions[1].VMID != "b" {
		t.Errorf("order: %s %s", sessions[0].VMID, sessions[1].VMID)
	}
}

func TestStateChangeCount(t *testing.T) {
	events := []Event{
		ev("a", EvRequest, 0, 1, 1), // not a state change
		ev("a", EvStart, 1, 1, 1),
		ev("a", EvStop, 2, 1, 1),
		ev("a", EvResume, 3, 1, 1),
		ev("a", EvTerminate, 4, 1, 1),
		ev("b", EvStart, 0, 1, 1),
	}
	counts := StateChangeCount(events)
	if counts["a"] != 4 || counts["b"] != 1 {
		t.Errorf("counts = %v", counts)
	}
}

func TestTimePerState(t *testing.T) {
	events := []Event{
		ev("a", EvStart, 0, 1, 1),
		ev("a", EvStop, 3, 1, 1),
	}
	tps := TimePerState(events, t0.Add(10*time.Hour))
	if tps["a"]["running"] != 3*time.Hour {
		t.Errorf("running = %v", tps["a"]["running"])
	}
	if tps["a"]["stopped"] != 7*time.Hour {
		t.Errorf("stopped = %v", tps["a"]["stopped"])
	}
}

func TestSetupAndSessionRow(t *testing.T) {
	db := warehouse.Open("c")
	if err := Setup(db); err != nil {
		t.Fatal(err)
	}
	if err := Setup(db); err != nil {
		t.Fatalf("setup not idempotent: %v", err)
	}
	s := Session{
		VMID: "vm9", Resource: "r", User: "u", Project: "p", InstanceType: "m1",
		Cores: 2, MemoryGB: 4, Start: t0, End: t0.Add(90 * time.Minute), Ended: true,
	}
	row := SessionRow(s, 0)
	if err := db.Insert(SchemaName, SessionTable, row); err != nil {
		t.Fatal(err)
	}
	if row["wall_hours"] != 1.5 || row["core_hours"] != 3.0 {
		t.Errorf("derived columns wrong: %v %v", row["wall_hours"], row["core_hours"])
	}
	if row["month_key"] != int64(201704) {
		t.Errorf("month key = %v", row["month_key"])
	}
}

// TestPropertySessionInvariants: for arbitrary well-formed event
// streams, (1) sessions never overlap per VM, (2) every session has
// End >= Start, (3) total running time never exceeds first-event →
// horizon span.
func TestPropertySessionInvariants(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		var events []Event
		horizon := t0.Add(time.Duration(int(n)+1) * time.Hour)
		vms := []string{"a", "b", "c"}
		types := []EventType{EvStart, EvStop, EvPause, EvResume, EvResize, EvTerminate, EvRequest}
		for i := 0; i < int(n); i++ {
			events = append(events, ev(
				vms[rng.Intn(len(vms))],
				types[rng.Intn(len(types))],
				rng.Float64()*float64(int(n)),
				int64(rng.Intn(8)+1),
				math.Round(rng.Float64()*8*100)/100,
			))
		}
		sessions, err := ReconstructSessions(events, horizon)
		if err != nil {
			return false
		}
		last := map[string]time.Time{}
		running := map[string]time.Duration{}
		for _, s := range sessions {
			if s.End.Before(s.Start) {
				return false
			}
			if prev, ok := last[s.VMID]; ok && s.Start.Before(prev) {
				return false // overlap
			}
			last[s.VMID] = s.End
			running[s.VMID] += s.Wall()
		}
		first := map[string]time.Time{}
		for _, e := range events {
			if v, ok := first[e.VMID]; !ok || e.Time.Before(v) {
				first[e.VMID] = e.Time
			}
		}
		for vm, total := range running {
			if total > horizon.Sub(first[vm])+time.Nanosecond {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

package cloud

import (
	"fmt"
	"sort"
	"time"
)

// vmState tracks one VM through the event stream.
type vmState struct {
	running bool
	cur     Session // open session when running
	seq     int
}

// ReconstructSessions replays a VM event stream through the lifecycle
// state machine and emits sessions. Events may arrive unordered; they
// are sorted by (vm, time) first. The horizon closes sessions of VMs
// still running at the end of the stream (those sessions have
// Ended=false, modeling "Number of VMs Running").
//
// State machine per VM:
//
//	START  while stopped -> open a session
//	STOP/PAUSE while running -> close session (Ended)
//	RESUME while stopped -> open a session (same config)
//	RESIZE while running -> close session and immediately open a new
//	        one with the new configuration ("allocated memory can even
//	        be changed during the life of the VM", paper §III-B)
//	TERMINATE -> close session (Ended, Terminated)
//	REQUEST -> bookkeeping only
//
// Out-of-protocol events (STOP while stopped, double START) are
// tolerated and ignored, as real clouds emit duplicates.
func ReconstructSessions(events []Event, horizon time.Time) ([]Session, error) {
	for i, e := range events {
		if err := e.Validate(); err != nil {
			return nil, fmt.Errorf("event %d: %w", i, err)
		}
	}
	sorted := append([]Event(nil), events...)
	sort.SliceStable(sorted, func(i, j int) bool {
		if sorted[i].VMID != sorted[j].VMID {
			return sorted[i].VMID < sorted[j].VMID
		}
		return sorted[i].Time.Before(sorted[j].Time)
	})

	var out []Session
	states := map[string]*vmState{}
	order := []string{}

	open := func(st *vmState, e Event) {
		st.running = true
		st.cur = Session{
			VMID: e.VMID, Resource: e.Resource, User: e.User, Project: e.Project,
			InstanceType: e.InstanceType, Cores: e.Cores, MemoryGB: e.MemoryGB,
			DiskGB: e.DiskGB, Start: e.Time,
		}
	}
	closeSession := func(st *vmState, at time.Time, terminated bool) Session {
		st.running = false
		s := st.cur
		s.End = at
		s.Ended = true
		s.Terminated = terminated
		st.seq++
		return s
	}

	for _, e := range sorted {
		st, ok := states[e.VMID]
		if !ok {
			st = &vmState{}
			states[e.VMID] = st
			order = append(order, e.VMID)
		}
		switch e.Type {
		case EvStart, EvResume:
			if st.running {
				continue // duplicate start
			}
			open(st, e)
		case EvStop, EvPause:
			if !st.running {
				continue
			}
			out = append(out, closeSession(st, e.Time, false))
		case EvTerminate:
			if st.running {
				out = append(out, closeSession(st, e.Time, true))
			}
		case EvResize:
			if !st.running {
				continue // config change while stopped takes effect at next start
			}
			out = append(out, closeSession(st, e.Time, false))
			open(st, e)
		case EvRequest:
			// provisioning bookkeeping; no session effect
		}
	}

	// Close still-running sessions at the horizon.
	for _, id := range order {
		st := states[id]
		if st.running {
			s := st.cur
			if horizon.After(s.Start) {
				s.End = horizon
			} else {
				s.End = s.Start
			}
			s.Ended = false
			st.seq++
			out = append(out, s)
		}
	}

	sort.SliceStable(out, func(i, j int) bool {
		if out[i].VMID != out[j].VMID {
			return out[i].VMID < out[j].VMID
		}
		return out[i].Start.Before(out[j].Start)
	})
	return out, nil
}

// StateChangeCount returns, per VM, the number of state-transition
// events (a metric the paper lists as under consideration: "Count of
// State Changes").
func StateChangeCount(events []Event) map[string]int {
	out := map[string]int{}
	for _, e := range events {
		switch e.Type {
		case EvStart, EvStop, EvPause, EvResume, EvTerminate, EvResize:
			out[e.VMID]++
		}
	}
	return out
}

// TimePerState sums, per VM, the time spent running vs stopped between
// the VM's first event and the horizon ("Time Spent per State").
func TimePerState(events []Event, horizon time.Time) map[string]map[string]time.Duration {
	sessions, err := ReconstructSessions(events, horizon)
	if err != nil {
		return nil
	}
	first := map[string]time.Time{}
	for _, e := range events {
		if t, ok := first[e.VMID]; !ok || e.Time.Before(t) {
			first[e.VMID] = e.Time
		}
	}
	out := map[string]map[string]time.Duration{}
	running := map[string]time.Duration{}
	for _, s := range sessions {
		running[s.VMID] += s.Wall()
	}
	for vm, start := range first {
		total := horizon.Sub(start)
		if total < 0 {
			total = 0
		}
		run := running[vm]
		stopped := total - run
		if stopped < 0 {
			stopped = 0
		}
		out[vm] = map[string]time.Duration{"running": run, "stopped": stopped}
	}
	return out
}

// Package cloud implements the Cloud Metrics realm the paper
// introduces in §III-B. Cloud monitoring differs fundamentally from
// HPC job accounting: VMs are long-lived, reconfigurable, and change
// state (started, stopped, paused, resumed, resized, terminated), so
// the realm ingests a raw VM event stream (as produced by an OpenStack
// installation) and reconstructs "sessions" — contiguous intervals
// during which a VM ran with a fixed hardware configuration. Metrics
// (core hours, wall hours, VMs started/ended, average cores per VM)
// are computed over sessions, and the VM-memory dimension is binned
// into the aggregation levels of the paper's Figure 7.
package cloud

import (
	"fmt"
	"time"

	"xdmodfed/internal/realm"
	"xdmodfed/internal/warehouse"
)

// Warehouse locations for the realm.
const (
	SchemaName   = "modw_cloud"
	EventTable   = "event"
	SessionTable = "session_records"
)

// EventType enumerates VM lifecycle events, mirroring the OpenStack
// compute event vocabulary.
type EventType string

// VM lifecycle event types.
const (
	EvRequest   EventType = "REQUEST"
	EvStart     EventType = "START"
	EvStop      EventType = "STOP"
	EvPause     EventType = "PAUSE"
	EvResume    EventType = "RESUME"
	EvResize    EventType = "RESIZE"
	EvTerminate EventType = "TERMINATE"
)

// Valid reports whether t is a known event type.
func (t EventType) Valid() bool {
	switch t {
	case EvRequest, EvStart, EvStop, EvPause, EvResume, EvResize, EvTerminate:
		return true
	}
	return false
}

// Event is one raw VM lifecycle event.
type Event struct {
	VMID         string
	Resource     string
	User         string
	Project      string
	InstanceType string
	Type         EventType
	Time         time.Time
	Cores        int64   // configuration at/after the event
	MemoryGB     float64 //
	DiskGB       float64 //
}

// Validate rejects malformed events.
func (e Event) Validate() error {
	if e.VMID == "" {
		return fmt.Errorf("cloud: event missing vm id")
	}
	if e.Resource == "" {
		return fmt.Errorf("cloud: event for %s missing resource", e.VMID)
	}
	if !e.Type.Valid() {
		return fmt.Errorf("cloud: event for %s has unknown type %q", e.VMID, e.Type)
	}
	if e.Time.IsZero() {
		return fmt.Errorf("cloud: event for %s missing timestamp", e.VMID)
	}
	if e.Cores < 0 || e.MemoryGB < 0 || e.DiskGB < 0 {
		return fmt.Errorf("cloud: event for %s has negative configuration", e.VMID)
	}
	return nil
}

// Session is one contiguous running interval of a VM with a fixed
// configuration. A VM that is stopped/paused and later resumed, or
// resized while running, produces multiple sessions.
type Session struct {
	VMID         string
	Resource     string
	User         string
	Project      string
	InstanceType string
	Cores        int64
	MemoryGB     float64
	DiskGB       float64
	Start        time.Time
	End          time.Time
	Ended        bool // closed by STOP/PAUSE/TERMINATE (vs. still running at horizon)
	Terminated   bool // closed specifically by TERMINATE
}

// Wall returns the session's wall duration.
func (s Session) Wall() time.Duration { return s.End.Sub(s.Start) }

// CoreHours returns cores × wall hours for the session.
func (s Session) CoreHours() float64 { return float64(s.Cores) * s.Wall().Hours() }

// EventDef returns the raw event table definition.
func EventDef() warehouse.TableDef {
	return warehouse.TableDef{
		Name: EventTable,
		Columns: []warehouse.Column{
			{Name: "vm_id", Type: warehouse.TypeString},
			{Name: "resource", Type: warehouse.TypeString},
			{Name: "username", Type: warehouse.TypeString},
			{Name: "project", Type: warehouse.TypeString},
			{Name: "instance_type", Type: warehouse.TypeString},
			{Name: "event_type", Type: warehouse.TypeString},
			{Name: "event_time", Type: warehouse.TypeTime},
			{Name: "cores", Type: warehouse.TypeInt},
			{Name: "memory_gb", Type: warehouse.TypeFloat},
			{Name: "disk_gb", Type: warehouse.TypeFloat},
		},
		Indexes: [][]string{{"vm_id"}},
	}
}

// SessionDef returns the derived session table definition.
func SessionDef() warehouse.TableDef {
	return warehouse.TableDef{
		Name: SessionTable,
		Columns: []warehouse.Column{
			{Name: "session_id", Type: warehouse.TypeString},
			{Name: "vm_id", Type: warehouse.TypeString},
			{Name: "resource", Type: warehouse.TypeString},
			{Name: "username", Type: warehouse.TypeString},
			{Name: "project", Type: warehouse.TypeString},
			{Name: "instance_type", Type: warehouse.TypeString},
			{Name: "cores", Type: warehouse.TypeInt},
			{Name: "memory_gb", Type: warehouse.TypeFloat},
			{Name: "disk_gb", Type: warehouse.TypeFloat},
			{Name: "start_time", Type: warehouse.TypeTime},
			{Name: "end_time", Type: warehouse.TypeTime},
			{Name: "wall_hours", Type: warehouse.TypeFloat},
			{Name: "core_hours", Type: warehouse.TypeFloat},
			{Name: "ended", Type: warehouse.TypeBool},
			{Name: "terminated", Type: warehouse.TypeBool},
			{Name: "month_key", Type: warehouse.TypeInt},
		},
		PrimaryKey: []string{"session_id"},
		Indexes:    [][]string{{"vm_id"}, {"month_key"}},
	}
}

// Metric and dimension IDs.
const (
	MetricAvgCoresPerVM  = "cloud_avg_cores_per_vm"
	MetricCoreHours      = "cloud_core_time"
	MetricWallHours      = "cloud_wall_time"
	MetricCoresTotal     = "cloud_num_cores"
	MetricVMsEnded       = "cloud_num_sessions_ended"
	MetricVMsStarted     = "cloud_num_sessions_started"
	MetricVMsRunning     = "cloud_num_sessions_running"
	MetricAvgMemReserved = "cloud_avg_memory_reserved"
	MetricAvgCoreHours   = "cloud_avg_core_hours_per_vm"

	DimResource     = "resource"
	DimProject      = "project"
	DimUser         = "person"
	DimInstanceType = "instance_type"
	DimVMSizeMem    = "vm_memory"
	DimVMSizeCores  = "vm_cores"
)

// RealmInfo describes the Cloud realm. Metrics follow the paper's
// initial-release list (§III-B): average cores per VM; average memory
// reserved weighted by wall hours; core/wall hours total; cores total;
// number of VMs ended/running/started.
func RealmInfo() realm.Info {
	return realm.Info{
		Name:       "Cloud",
		Schema:     SchemaName,
		FactTable:  SessionTable,
		TimeColumn: "end_time",
		Metrics: []realm.Metric{
			{ID: MetricAvgCoresPerVM, Name: "Average Cores per VM", Unit: "Core Count", Func: warehouse.AggAvg, Column: "cores"},
			{ID: MetricCoreHours, Name: "Core Hours: Total", Unit: "Core Hour", Func: warehouse.AggSum, Column: "core_hours"},
			{ID: MetricWallHours, Name: "Wall Hours: Total", Unit: "Hour", Func: warehouse.AggSum, Column: "wall_hours"},
			{ID: MetricCoresTotal, Name: "Cores: Total", Unit: "Core Count", Func: warehouse.AggSum, Column: "cores"},
			{ID: MetricVMsEnded, Name: "Number of VMs Ended", Unit: "VMs", Func: warehouse.AggSum, Column: "ended"},
			{ID: MetricVMsStarted, Name: "Number of VMs Started", Unit: "VMs", Func: warehouse.AggCount},
			{ID: MetricAvgMemReserved, Name: "Average Memory Reserved (weighted by wall hours)", Unit: "GB", Func: warehouse.AggAvg, Column: "memory_gb", WeightColumn: "wall_hours"},
			{ID: MetricAvgCoreHours, Name: "Average Core Hours per VM", Unit: "Core Hour", Func: warehouse.AggAvg, Column: "core_hours"},
		},
		Dimensions: []realm.Dimension{
			{ID: DimResource, Name: "Resource", Column: "resource"},
			{ID: DimProject, Name: "Project", Column: "project"},
			{ID: DimUser, Name: "User", Column: "username"},
			{ID: DimInstanceType, Name: "Instance Type", Column: "instance_type"},
			{ID: DimVMSizeMem, Name: "VM Size: Memory", Column: "memory_gb", Numeric: true},
			{ID: DimVMSizeCores, Name: "VM Size: Cores", Column: "cores", Numeric: true},
		},
	}
}

// Setup creates the realm's schema and tables.
func Setup(db *warehouse.DB) error {
	s := db.EnsureSchema(SchemaName)
	if _, err := s.EnsureTable(EventDef()); err != nil {
		return err
	}
	_, err := s.EnsureTable(SessionDef())
	return err
}

// monthKey returns the YYYYMM key of t.
func monthKey(t time.Time) int64 {
	t = t.UTC()
	return int64(t.Year())*100 + int64(t.Month())
}

// EventRow converts a VM lifecycle event into a positional
// cloud_events row (EventDef column order).
func EventRow(e Event) []any {
	return []any{
		e.VMID, e.Resource, e.User, e.Project, e.InstanceType,
		string(e.Type), e.Time, e.Cores, e.MemoryGB, e.DiskGB,
	}
}

// SessionValues converts a session into a positional session_records
// row (SessionDef column order). seq disambiguates multiple sessions
// of the same VM.
func SessionValues(s Session, seq int) []any {
	return []any{
		fmt.Sprintf("%s/%d", s.VMID, seq),
		s.VMID, s.Resource, s.User, s.Project, s.InstanceType,
		s.Cores, s.MemoryGB, s.DiskGB,
		s.Start, s.End, s.Wall().Hours(), s.CoreHours(),
		s.Ended, s.Terminated, monthKey(s.End),
	}
}

// SessionRow converts a session into a session_records row.
func SessionRow(s Session, seq int) map[string]any {
	return map[string]any{
		"session_id":    fmt.Sprintf("%s/%d", s.VMID, seq),
		"vm_id":         s.VMID,
		"resource":      s.Resource,
		"username":      s.User,
		"project":       s.Project,
		"instance_type": s.InstanceType,
		"cores":         s.Cores,
		"memory_gb":     s.MemoryGB,
		"disk_gb":       s.DiskGB,
		"start_time":    s.Start,
		"end_time":      s.End,
		"wall_hours":    s.Wall().Hours(),
		"core_hours":    s.CoreHours(),
		"ended":         s.Ended,
		"terminated":    s.Terminated,
		"month_key":     monthKey(s.End),
	}
}

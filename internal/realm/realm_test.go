package realm

import (
	"testing"

	"xdmodfed/internal/warehouse"
)

func sample() Info {
	return Info{
		Name: "Test", Schema: "s", FactTable: "f", TimeColumn: "t",
		Metrics: []Metric{
			{ID: "m1", Name: "Metric 1", Func: warehouse.AggSum, Column: "c"},
			{ID: "m2", Name: "Metric 2", Func: warehouse.AggCount},
		},
		Dimensions: []Dimension{
			{ID: "d1", Name: "Dim 1", Column: "c"},
		},
	}
}

func TestInfoValidate(t *testing.T) {
	if err := sample().Validate(); err != nil {
		t.Fatalf("valid info rejected: %v", err)
	}
	bad := []func(*Info){
		func(i *Info) { i.Name = "" },
		func(i *Info) { i.Schema = "" },
		func(i *Info) { i.FactTable = "" },
		func(i *Info) { i.TimeColumn = "" },
		func(i *Info) { i.Metrics[0].ID = "" },
		func(i *Info) { i.Metrics[0].Column = "" }, // sum without column
		func(i *Info) { i.Metrics[1].ID = "m1" },   // duplicate
		func(i *Info) { i.Dimensions[0].Column = "" },
		func(i *Info) { i.Dimensions = append(i.Dimensions, Dimension{ID: "d1", Name: "x", Column: "c"}) },
	}
	for n, mutate := range bad {
		i := sample()
		mutate(&i)
		if err := i.Validate(); err == nil {
			t.Errorf("case %d: expected error", n)
		}
	}
}

func TestMetricDimensionLookup(t *testing.T) {
	i := sample()
	if m, ok := i.Metric("m1"); !ok || m.Name != "Metric 1" {
		t.Errorf("Metric lookup failed: %v %v", m, ok)
	}
	if _, ok := i.Metric("zz"); ok {
		t.Error("unknown metric should miss")
	}
	if d, ok := i.Dimension("d1"); !ok || d.Name != "Dim 1" {
		t.Errorf("Dimension lookup failed: %v %v", d, ok)
	}
	if _, ok := i.Dimension("zz"); ok {
		t.Error("unknown dimension should miss")
	}
}

func TestScaleOr1(t *testing.T) {
	if got := (Metric{}).ScaleOr1(); got != 1 {
		t.Errorf("default scale = %g, want 1", got)
	}
	if got := (Metric{Scale: 0.5}).ScaleOr1(); got != 0.5 {
		t.Errorf("scale = %g, want 0.5", got)
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	if err := r.Register(sample()); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(sample()); err == nil {
		t.Error("duplicate registration should fail")
	}
	if err := r.Register(Info{}); err == nil {
		t.Error("invalid info should be rejected")
	}
	got, ok := r.Get("Test")
	if !ok || got.Schema != "s" {
		t.Errorf("Get failed: %+v %v", got, ok)
	}
	two := sample()
	two.Name = "Another"
	r.Register(two)
	names := r.Names()
	if len(names) != 2 || names[0] != "Another" || names[1] != "Test" {
		t.Errorf("Names = %v", names)
	}
}

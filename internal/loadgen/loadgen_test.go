package loadgen

import (
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunClassifiesOutcomes(t *testing.T) {
	// A deterministic front door: /ok admits, /stale degrades, /shed
	// sheds properly, /bad sheds without a usable Retry-After.
	mux := http.NewServeMux()
	mux.HandleFunc("/ok", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("{}"))
	})
	mux.HandleFunc("/stale", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Warning", `110 - "Response is Stale"`)
		w.Write([]byte("{}"))
	})
	mux.HandleFunc("/shed", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "2")
		w.WriteHeader(http.StatusTooManyRequests)
	})
	mux.HandleFunc("/bad", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusTooManyRequests) // no Retry-After: a bug
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	for _, tc := range []struct {
		path  string
		check func(Report) bool
		want  string
	}{
		{"/ok", func(r Report) bool { return r.Admitted == r.Offered && r.Errors == 0 }, "all admitted"},
		{"/stale", func(r Report) bool { return r.Stale == r.Offered && r.Admitted == 0 }, "all stale"},
		{"/shed", func(r Report) bool {
			return r.Shed == r.Offered && r.ShedRate == 1 && r.MinRetryAfterSeconds == 2
		}, "all shed with Retry-After 2"},
		{"/bad", func(r Report) bool { return r.Errors == r.Offered && r.Shed == 0 }, "malformed sheds are errors"},
	} {
		rep, err := Run(Options{BaseURL: srv.URL, Paths: []string{tc.path}, Workers: 4, Requests: 5, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Offered != 20 {
			t.Fatalf("%s: offered %d, want 20", tc.path, rep.Offered)
		}
		if got := rep.Admitted + rep.Stale + rep.Shed + rep.Errors; got != rep.Offered {
			t.Fatalf("%s: classified %d of %d requests", tc.path, got, rep.Offered)
		}
		if !tc.check(rep) {
			t.Fatalf("%s: want %s, got %+v", tc.path, tc.want, rep)
		}
	}
}

func TestRunTokenAndArrivalProcess(t *testing.T) {
	var authed atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get("Authorization") == "Bearer tok" {
			authed.Add(1)
		}
		w.Write([]byte("{}"))
	}))
	defer srv.Close()
	start := time.Now()
	rep, err := Run(Options{
		BaseURL: srv.URL, Token: "tok", Paths: []string{"/a", "/b"},
		Workers: 2, Requests: 10, Seed: 42, ThinkMean: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if int(authed.Load()) != rep.Offered {
		t.Fatalf("%d requests carried the token, want %d", authed.Load(), rep.Offered)
	}
	// 20 exponential think pauses with a 2ms mean can't finish instantly.
	if time.Since(start) < 2*time.Millisecond {
		t.Fatal("arrival process did not pause at all")
	}
	if rep.P50Millis <= 0 || rep.P99Millis < rep.P50Millis {
		t.Fatalf("nonsense percentiles: %+v", rep)
	}
}

func TestPercentileMillis(t *testing.T) {
	var sorted []time.Duration
	for i := 1; i <= 100; i++ {
		sorted = append(sorted, time.Duration(i)*time.Millisecond)
	}
	for _, tc := range []struct{ p, want int }{{50, 50}, {95, 95}, {99, 99}, {100, 100}} {
		if got := percentileMillis(sorted, tc.p); got != float64(tc.want) {
			t.Fatalf("p%d = %v, want %d", tc.p, got, tc.want)
		}
	}
	if got := percentileMillis(nil, 50); got != 0 {
		t.Fatalf("empty percentile = %v", got)
	}
}

func TestRunRejectsBadOptions(t *testing.T) {
	if _, err := Run(Options{Paths: []string{"/x"}}); err == nil {
		t.Fatal("zero workers accepted")
	}
	if _, err := Run(Options{Workers: 1, Requests: 1}); err == nil {
		t.Fatal("no paths accepted")
	}
}

// Package loadgen is an in-process load harness for the front-door
// admission stack: it drives many concurrent authenticated clients
// against a live instance's REST API with a seeded arrival process and
// reports what the front door did — how much was admitted, served
// stale, or shed, and the latency distribution of what got through.
// The root-level bench (make bench-load) uses it to prove the
// admission invariants hold at 1x/4x/16x overload; its own unit tests
// exercise it against synthetic handlers.
package loadgen

import (
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"
)

// Options configures one load run. Every worker is an independent
// closed-loop client: think (exponential, seeded), pick a path
// (seeded), request, classify, repeat.
type Options struct {
	BaseURL string
	// Token is sent as a bearer token when non-empty.
	Token string
	// Paths are the request targets; each worker picks uniformly per
	// request with its seeded generator.
	Paths []string
	// Workers is the number of concurrent clients.
	Workers int
	// Requests is issued per worker, so offered load = Workers*Requests.
	Requests int
	// ThinkMean is the mean of the exponential inter-request think
	// time; zero means hammer with no pause.
	ThinkMean time.Duration
	// Seed makes the arrival process and path choices reproducible;
	// worker i derives its generator from Seed+i.
	Seed int64
	// Client defaults to http.DefaultClient.
	Client *http.Client
}

// Report is the outcome of one load run. Offered always equals
// Admitted+Stale+Shed+Errors: every request is classified exactly once.
type Report struct {
	Workers int `json:"workers"`
	Offered int `json:"offered"`
	// Admitted counts fresh 200s — requests that made it through the
	// full admission stack to a live computation.
	Admitted int `json:"admitted"`
	// Stale counts 200s carrying the Warning: 110 header — shed
	// requests degraded to a cached result instead of a 429.
	Stale int `json:"stale"`
	// Shed counts well-formed 429s (positive integer Retry-After). A
	// 429 without a usable Retry-After is an Error: shedding without
	// telling clients when to return is a bug, not load management.
	Shed int `json:"shed"`
	// Errors counts transport failures, unexpected statuses and
	// malformed sheds.
	Errors int `json:"errors"`
	// ShedRate is Shed/Offered.
	ShedRate    float64 `json:"shed_rate"`
	WallSeconds float64 `json:"wall_seconds"`
	// GoodputRPS is useful responses (Admitted+Stale) per second of
	// wall clock.
	GoodputRPS float64 `json:"goodput_rps"`
	// Latency percentiles (milliseconds) over useful responses.
	P50Millis float64 `json:"p50_ms"`
	P95Millis float64 `json:"p95_ms"`
	P99Millis float64 `json:"p99_ms"`
	// MinRetryAfterSeconds is the smallest Retry-After seen on a shed;
	// zero when nothing was shed.
	MinRetryAfterSeconds int `json:"min_retry_after_seconds"`
	// FirstError preserves one example failure for diagnostics.
	FirstError string `json:"first_error,omitempty"`
}

// workerResult is one worker's tally, merged after the run.
type workerResult struct {
	admitted, stale, shed, errors int
	latencies                     []time.Duration
	minRetryAfter                 int
	firstErr                      string
}

// Run executes the load described by opts and reports the outcome.
func Run(opts Options) (Report, error) {
	if opts.Workers <= 0 || opts.Requests <= 0 {
		return Report{}, fmt.Errorf("loadgen: Workers and Requests must be positive")
	}
	if len(opts.Paths) == 0 {
		return Report{}, fmt.Errorf("loadgen: at least one path is required")
	}
	client := opts.Client
	if client == nil {
		client = http.DefaultClient
	}
	results := make([]workerResult, opts.Workers)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < opts.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			results[w] = runWorker(client, opts, rand.New(rand.NewSource(opts.Seed+int64(w))))
		}(w)
	}
	wg.Wait()
	wall := time.Since(start)

	rep := Report{Workers: opts.Workers, Offered: opts.Workers * opts.Requests, WallSeconds: wall.Seconds()}
	var latencies []time.Duration
	for _, r := range results {
		rep.Admitted += r.admitted
		rep.Stale += r.stale
		rep.Shed += r.shed
		rep.Errors += r.errors
		latencies = append(latencies, r.latencies...)
		if r.minRetryAfter > 0 && (rep.MinRetryAfterSeconds == 0 || r.minRetryAfter < rep.MinRetryAfterSeconds) {
			rep.MinRetryAfterSeconds = r.minRetryAfter
		}
		if rep.FirstError == "" {
			rep.FirstError = r.firstErr
		}
	}
	rep.ShedRate = float64(rep.Shed) / float64(rep.Offered)
	if rep.WallSeconds > 0 {
		rep.GoodputRPS = float64(rep.Admitted+rep.Stale) / rep.WallSeconds
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	rep.P50Millis = percentileMillis(latencies, 50)
	rep.P95Millis = percentileMillis(latencies, 95)
	rep.P99Millis = percentileMillis(latencies, 99)
	return rep, nil
}

// runWorker is one closed-loop client: think, request, classify.
func runWorker(client *http.Client, opts Options, rng *rand.Rand) workerResult {
	var res workerResult
	for i := 0; i < opts.Requests; i++ {
		if opts.ThinkMean > 0 {
			time.Sleep(time.Duration(rng.ExpFloat64() * float64(opts.ThinkMean)))
		}
		path := opts.Paths[rng.Intn(len(opts.Paths))]
		req, err := http.NewRequest("GET", opts.BaseURL+path, nil)
		if err != nil {
			res.fail(err.Error())
			continue
		}
		if opts.Token != "" {
			req.Header.Set("Authorization", "Bearer "+opts.Token)
		}
		t0 := time.Now()
		resp, err := client.Do(req)
		if err != nil {
			res.fail(err.Error())
			continue
		}
		elapsed := time.Since(t0)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		switch {
		case resp.StatusCode == http.StatusOK && resp.Header.Get("Warning") != "":
			res.stale++
			res.latencies = append(res.latencies, elapsed)
		case resp.StatusCode == http.StatusOK:
			res.admitted++
			res.latencies = append(res.latencies, elapsed)
		case resp.StatusCode == http.StatusTooManyRequests:
			secs, err := strconv.Atoi(resp.Header.Get("Retry-After"))
			if err != nil || secs < 1 {
				res.fail(fmt.Sprintf("429 with unusable Retry-After %q", resp.Header.Get("Retry-After")))
				continue
			}
			res.shed++
			if res.minRetryAfter == 0 || secs < res.minRetryAfter {
				res.minRetryAfter = secs
			}
		default:
			res.fail(fmt.Sprintf("unexpected status %d on %s", resp.StatusCode, path))
		}
	}
	return res
}

func (r *workerResult) fail(msg string) {
	r.errors++
	if r.firstErr == "" {
		r.firstErr = msg
	}
}

// percentileMillis returns the nearest-rank p'th percentile of sorted,
// in milliseconds; zero when empty.
func percentileMillis(sorted []time.Duration, p int) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := (p*len(sorted) + 99) / 100 // ceil(p/100 * n), 1-based
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return float64(sorted[rank-1].Nanoseconds()) / 1e6
}

// Package ingest implements the XDMoD data ingestion pipeline: staging
// records from the shredders (or realm-specific feeds) are normalized
// into warehouse fact tables and folded into the aggregation tables.
// This is the per-instance "Data Ingestion" stage of the paper's
// Figure 3; everything a satellite ingests subsequently replicates to
// its federation hubs via the binlog.
package ingest

import (
	"context"
	"fmt"
	"io"
	"time"

	"xdmodfed/internal/aggregate"
	"xdmodfed/internal/obs"
	"xdmodfed/internal/realm/cloud"
	"xdmodfed/internal/realm/jobs"
	"xdmodfed/internal/realm/storage"
	"xdmodfed/internal/shredder"
	"xdmodfed/internal/su"
	"xdmodfed/internal/warehouse"
)

// Stats summarizes one ingestion run.
type Stats struct {
	Parsed   int // records seen in the input
	Ingested int // new fact rows written
	Skipped  int // duplicates of already-ingested facts
	Rejected int // records failing validation or parse
	Errors   []error
}

func (s Stats) String() string {
	return fmt.Sprintf("parsed=%d ingested=%d skipped=%d rejected=%d", s.Parsed, s.Ingested, s.Skipped, s.Rejected)
}

// Pipeline ingests data into one instance's warehouse. Engine is
// optional; when set, newly ingested job/storage facts are folded into
// the aggregation tables incrementally, and cloud ingestion triggers a
// cloud-realm re-aggregation (sessions are rebuilt from the event log).
type Pipeline struct {
	DB        *warehouse.DB
	Converter *su.Converter
	Engine    *aggregate.Engine
}

// IngestJobRecords normalizes staging records into the Jobs realm.
// Re-ingesting the same accounting log is idempotent: records whose
// (resource, job id) already exist are skipped.
func (p *Pipeline) IngestJobRecords(recs []shredder.JobRecord) (Stats, error) {
	var st Stats
	_, sp := obs.StartSpan(context.Background(), "ingest.IngestJobRecords")
	defer sp.End()
	defer mBatchSeconds.With("Jobs").ObserveSince(time.Now())
	defer func() { countStats("Jobs", st) }()
	tab, err := p.DB.TableIn(jobs.SchemaName, jobs.FactTable)
	if err != nil {
		return st, fmt.Errorf("ingest: jobs realm not set up: %w", err)
	}
	// Normalize and validate with no lock held; only well-formed rows
	// enter the write transaction.
	type candidate struct {
		resource string
		jobID    int64
		row      []any
	}
	cands := make([]candidate, 0, len(recs))
	for _, rec := range recs {
		st.Parsed++
		row, err := jobs.FactRowFromRecord(rec, p.Converter)
		if err != nil {
			st.Rejected++
			st.Errors = append(st.Errors, err)
			continue
		}
		cands = append(cands, candidate{rec.Resource, rec.LocalJobID, row})
	}
	// One write transaction for the whole batch: a single lock
	// acquisition and one columnar-snapshot publish regardless of batch
	// size. Duplicate keys — already ingested, or repeated within the
	// batch — are visible to GetByKey inside the transaction.
	var ingested [][]any
	if len(cands) > 0 {
		err := p.DB.Do(func() error {
			for _, c := range cands {
				if _, exists := tab.GetByKey(c.resource, c.jobID); exists {
					st.Skipped++
					continue
				}
				if err := tab.InsertRow(c.row); err != nil {
					st.Rejected++
					st.Errors = append(st.Errors, err)
					continue
				}
				st.Ingested++
				ingested = append(ingested, c.row)
			}
			return nil
		})
		if err != nil {
			return st, err
		}
	}
	if p.Engine != nil && len(ingested) > 0 {
		if _, err := p.Engine.ApplyFactRows(jobs.RealmInfo(), jobs.SchemaName, ingested); err != nil {
			return st, fmt.Errorf("ingest: aggregate jobs: %w", err)
		}
	}
	if st.Ingested > 0 {
		// The ingest's own commits bumped the touched shards' epochs,
		// invalidating cached charts for exactly the realms written.
		// Mark the binlog with this ingest's trace context, so the
		// replication send and the hub apply join the same trace.
		p.DB.Binlog().NoteTrace(sp.TraceParent())
	}
	return st, nil
}

// IngestJobLog shreds an accounting log in the named format and
// ingests the result.
func (p *Pipeline) IngestJobLog(r io.Reader, format, resource string) (Stats, error) {
	parser, err := shredder.New(format)
	if err != nil {
		return Stats{}, err
	}
	recs, perrs := parser.Parse(r, resource)
	st, err := p.IngestJobRecords(recs)
	for _, pe := range perrs {
		st.Parsed++
		st.Rejected++
		st.Errors = append(st.Errors, pe)
	}
	return st, err
}

// IngestCloudEvents appends raw VM lifecycle events, rebuilds the
// session table from the full event log (sessions are a pure function
// of the event history), and re-aggregates the Cloud realm.
func (p *Pipeline) IngestCloudEvents(events []cloud.Event, horizon time.Time) (Stats, error) {
	var st Stats
	_, sp := obs.StartSpan(context.Background(), "ingest.IngestCloudEvents")
	defer sp.End()
	defer mBatchSeconds.With("Cloud").ObserveSince(time.Now())
	defer func() { countStats("Cloud", st) }()
	evTab, err := p.DB.TableIn(cloud.SchemaName, cloud.EventTable)
	if err != nil {
		return st, fmt.Errorf("ingest: cloud realm not set up: %w", err)
	}
	rows := make([][]any, 0, len(events))
	for _, e := range events {
		st.Parsed++
		if err := e.Validate(); err != nil {
			st.Rejected++
			st.Errors = append(st.Errors, err)
			continue
		}
		rows = append(rows, cloud.EventRow(e))
	}
	if len(rows) > 0 {
		err := p.DB.Do(func() error {
			for _, r := range rows {
				if err := evTab.InsertRow(r); err != nil {
					st.Rejected++
					st.Errors = append(st.Errors, err)
					continue
				}
				st.Ingested++
			}
			return nil
		})
		if err != nil {
			return st, err
		}
	}
	if err := p.RebuildCloudSessions(horizon); err != nil {
		return st, err
	}
	if st.Ingested > 0 {
		p.DB.Binlog().NoteTrace(sp.TraceParent())
	}
	return st, nil
}

// RebuildCloudSessions reconstructs the session table from the raw
// event log up to the horizon and re-aggregates the Cloud realm.
func (p *Pipeline) RebuildCloudSessions(horizon time.Time) error {
	evTab, err := p.DB.TableIn(cloud.SchemaName, cloud.EventTable)
	if err != nil {
		return err
	}
	var events []cloud.Event
	p.DB.View(func() error {
		evTab.Scan(func(r warehouse.Row) bool {
			var ts time.Time
			if v, _ := r.Lookup("event_time"); v != nil {
				ts = v.(time.Time)
			}
			events = append(events, cloud.Event{
				VMID: r.String("vm_id"), Resource: r.String("resource"),
				User: r.String("username"), Project: r.String("project"),
				InstanceType: r.String("instance_type"),
				Type:         cloud.EventType(r.String("event_type")),
				Time:         ts, Cores: r.Int("cores"),
				MemoryGB: r.Float("memory_gb"), DiskGB: r.Float("disk_gb"),
			})
			return true
		})
		return nil
	})
	sessions, err := cloud.ReconstructSessions(events, horizon)
	if err != nil {
		return err
	}
	sessTab, err := p.DB.TableIn(cloud.SchemaName, cloud.SessionTable)
	if err != nil {
		return err
	}
	seq := map[string]int{}
	if err := p.DB.Do(func() error {
		sessTab.Truncate()
		for _, s := range sessions {
			row := cloud.SessionValues(s, seq[s.VMID])
			seq[s.VMID]++
			if err := sessTab.UpsertRow(row); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return err
	}
	if p.Engine != nil {
		if _, err := p.Engine.Reaggregate(cloud.RealmInfo(), []string{cloud.SchemaName}); err != nil {
			return err
		}
	}
	// The session-table commit bumped its shard's epoch even when no
	// engine re-aggregates, so cached cloud charts are invalidated.
	return nil
}

// IngestStorageSnapshots upserts storage usage snapshots. Same-day
// duplicates collapse (latest wins); the Storage realm is re-aggregated
// when an engine is configured, since upserts may revise prior facts.
func (p *Pipeline) IngestStorageSnapshots(snaps []storage.Snapshot) (Stats, error) {
	var st Stats
	_, sp := obs.StartSpan(context.Background(), "ingest.IngestStorageSnapshots")
	defer sp.End()
	defer mBatchSeconds.With("Storage").ObserveSince(time.Now())
	defer func() { countStats("Storage", st) }()
	tab, err := p.DB.TableIn(storage.SchemaName, storage.FactTable)
	if err != nil {
		return st, fmt.Errorf("ingest: storage realm not set up: %w", err)
	}
	rows := make([][]any, 0, len(snaps))
	for _, s := range snaps {
		st.Parsed++
		if err := s.Validate(); err != nil {
			st.Rejected++
			st.Errors = append(st.Errors, err)
			continue
		}
		rows = append(rows, storage.FactValues(s))
	}
	if len(rows) > 0 {
		err := p.DB.Do(func() error {
			for _, r := range rows {
				if err := tab.UpsertRow(r); err != nil {
					st.Rejected++
					st.Errors = append(st.Errors, err)
					continue
				}
				st.Ingested++
			}
			return nil
		})
		if err != nil {
			return st, err
		}
	}
	if p.Engine != nil && st.Ingested > 0 {
		if _, err := p.Engine.Reaggregate(storage.RealmInfo(), []string{storage.SchemaName}); err != nil {
			return st, err
		}
	}
	if st.Ingested > 0 {
		p.DB.Binlog().NoteTrace(sp.TraceParent())
	}
	return st, nil
}

// IngestStorageJSON validates and ingests a storage JSON document.
func (p *Pipeline) IngestStorageJSON(r io.Reader) (Stats, error) {
	snaps, err := storage.ParseJSON(r)
	if err != nil {
		return Stats{}, err
	}
	return p.IngestStorageSnapshots(snaps)
}

package ingest

import (
	"xdmodfed/internal/obs"
)

// Ingestion instrumentation: per-realm record outcomes and batch
// latency. Outcome labels mirror Stats fields: "ingested", "skipped",
// "rejected".
var (
	mRecords = obs.Default.CounterVec("xdmodfed_ingest_records_total",
		"Staging records processed by the ingestion pipeline, by realm and outcome.",
		"realm", "outcome")
	mBatchSeconds = obs.Default.HistogramVec("xdmodfed_ingest_batch_seconds",
		"Duration of one ingestion batch, by realm.", nil, "realm")
)

// countStats publishes one batch's Stats under the realm label.
func countStats(realm string, st Stats) {
	if n := st.Ingested; n > 0 {
		mRecords.With(realm, "ingested").Add(uint64(n))
	}
	if n := st.Skipped; n > 0 {
		mRecords.With(realm, "skipped").Add(uint64(n))
	}
	if n := st.Rejected; n > 0 {
		mRecords.With(realm, "rejected").Add(uint64(n))
	}
}

package ingest

import (
	"strings"
	"testing"
	"time"

	"xdmodfed/internal/aggregate"
	"xdmodfed/internal/config"
	"xdmodfed/internal/realm/cloud"
	"xdmodfed/internal/realm/jobs"
	"xdmodfed/internal/realm/storage"
	"xdmodfed/internal/shredder"
	"xdmodfed/internal/su"
	"xdmodfed/internal/warehouse"
)

func pipeline(t *testing.T) *Pipeline {
	t.Helper()
	db := warehouse.Open("instance")
	if _, err := jobs.Setup(db); err != nil {
		t.Fatal(err)
	}
	if err := cloud.Setup(db); err != nil {
		t.Fatal(err)
	}
	if _, err := storage.Setup(db); err != nil {
		t.Fatal(err)
	}
	eng, err := aggregate.New(db, []config.AggregationLevels{
		config.HubWallTime(), config.DefaultJobSize(), config.CloudVMMemory(),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, info := range []struct {
		setup func() error
	}{
		{func() error { return eng.Setup(jobs.RealmInfo()) }},
		{func() error { return eng.Setup(cloud.RealmInfo()) }},
		{func() error { return eng.Setup(storage.RealmInfo()) }},
	} {
		if err := info.setup(); err != nil {
			t.Fatal(err)
		}
	}
	conv := su.NewConverter()
	conv.Register("rush", 1.0)
	return &Pipeline{DB: db, Converter: conv, Engine: eng}
}

func jobRec(id int64) shredder.JobRecord {
	return shredder.JobRecord{
		LocalJobID: id, User: "u", Account: "a", Resource: "rush", Queue: "q",
		Nodes: 1, Cores: 4,
		Submit: time.Date(2017, 5, 1, 0, 0, 0, 0, time.UTC),
		Start:  time.Date(2017, 5, 1, 1, 0, 0, 0, time.UTC),
		End:    time.Date(2017, 5, 1, 3, 0, 0, 0, time.UTC),
	}
}

func TestIngestJobRecordsIdempotent(t *testing.T) {
	p := pipeline(t)
	st, err := p.IngestJobRecords([]shredder.JobRecord{jobRec(1), jobRec(2)})
	if err != nil {
		t.Fatal(err)
	}
	if st.Ingested != 2 || st.Skipped != 0 {
		t.Errorf("stats = %s", st)
	}
	// Re-ingesting the same log must not duplicate facts or aggregates.
	st2, err := p.IngestJobRecords([]shredder.JobRecord{jobRec(1), jobRec(2), jobRec(3)})
	if err != nil {
		t.Fatal(err)
	}
	if st2.Ingested != 1 || st2.Skipped != 2 {
		t.Errorf("stats = %s", st2)
	}
	if got := p.DB.Count(jobs.SchemaName, jobs.FactTable); got != 3 {
		t.Errorf("facts = %d", got)
	}
	series, err := p.Engine.Query(jobs.RealmInfo(), aggregate.Request{
		MetricID: jobs.MetricNumJobs, Period: aggregate.Year,
	})
	if err != nil {
		t.Fatal(err)
	}
	if series[0].Aggregate != 3 {
		t.Errorf("aggregated job count = %g, want 3 (no double count)", series[0].Aggregate)
	}
}

func TestIngestJobRecordsRejectsInvalid(t *testing.T) {
	p := pipeline(t)
	bad := jobRec(9)
	bad.User = ""
	unknownRes := jobRec(10)
	unknownRes.Resource = "unbenchmarked"
	st, err := p.IngestJobRecords([]shredder.JobRecord{bad, unknownRes, jobRec(11)})
	if err != nil {
		t.Fatal(err)
	}
	if st.Rejected != 2 || st.Ingested != 1 || len(st.Errors) != 2 {
		t.Errorf("stats = %s errors=%v", st, st.Errors)
	}
}

func TestIngestJobLog(t *testing.T) {
	p := pipeline(t)
	log := "2001|x|alice|acct|q|1|8|2017-03-01T00:00:00|2017-03-01T01:00:00|2017-03-01T02:00:00|COMPLETED\n" +
		"garbage line\n"
	st, err := p.IngestJobLog(strings.NewReader(log), "slurm", "rush")
	if err != nil {
		t.Fatal(err)
	}
	if st.Ingested != 1 || st.Rejected != 1 {
		t.Errorf("stats = %s", st)
	}
	if _, err := p.IngestJobLog(strings.NewReader(""), "lsf9", "rush"); err == nil {
		t.Error("unknown format must error")
	}
}

func TestIngestCloudEventsAndSessions(t *testing.T) {
	p := pipeline(t)
	t0 := time.Date(2017, 4, 1, 0, 0, 0, 0, time.UTC)
	events := []cloud.Event{
		{VMID: "vm1", Resource: "cloud", User: "u", Project: "p", InstanceType: "m1",
			Type: cloud.EvStart, Time: t0, Cores: 2, MemoryGB: 4},
		{VMID: "vm1", Resource: "cloud", User: "u", Project: "p", InstanceType: "m1",
			Type: cloud.EvStop, Time: t0.Add(3 * time.Hour), Cores: 2, MemoryGB: 4},
		{VMID: "", Resource: "cloud", Type: cloud.EvStart, Time: t0}, // invalid
	}
	st, err := p.IngestCloudEvents(events, t0.Add(24*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if st.Ingested != 2 || st.Rejected != 1 {
		t.Errorf("stats = %s", st)
	}
	if got := p.DB.Count(cloud.SchemaName, cloud.SessionTable); got != 1 {
		t.Fatalf("sessions = %d", got)
	}
	series, err := p.Engine.Query(cloud.RealmInfo(), aggregate.Request{
		MetricID: cloud.MetricCoreHours, Period: aggregate.Year,
	})
	if err != nil {
		t.Fatal(err)
	}
	if series[0].Aggregate != 6 { // 2 cores * 3 h
		t.Errorf("core hours = %g, want 6", series[0].Aggregate)
	}

	// Late-arriving events revise sessions without duplication.
	more := []cloud.Event{
		{VMID: "vm1", Resource: "cloud", User: "u", Project: "p", InstanceType: "m1",
			Type: cloud.EvResume, Time: t0.Add(5 * time.Hour), Cores: 2, MemoryGB: 4},
		{VMID: "vm1", Resource: "cloud", User: "u", Project: "p", InstanceType: "m1",
			Type: cloud.EvTerminate, Time: t0.Add(6 * time.Hour), Cores: 2, MemoryGB: 4},
	}
	if _, err := p.IngestCloudEvents(more, t0.Add(24*time.Hour)); err != nil {
		t.Fatal(err)
	}
	if got := p.DB.Count(cloud.SchemaName, cloud.SessionTable); got != 2 {
		t.Errorf("sessions after revision = %d, want 2", got)
	}
	series, _ = p.Engine.Query(cloud.RealmInfo(), aggregate.Request{
		MetricID: cloud.MetricCoreHours, Period: aggregate.Year,
	})
	if series[0].Aggregate != 8 { // 6 + 2*1
		t.Errorf("core hours after revision = %g, want 8", series[0].Aggregate)
	}
}

func TestIngestStorageJSON(t *testing.T) {
	p := pipeline(t)
	doc := `[
	 {"resource":"isilon","resource_type":"persistent","mountpoint":"/home","user":"alice","pi":"smith",
	  "dt":"2017-02-28T06:00:00Z","file_count":100,"logical_usage":1000,"physical_usage":1400,
	  "soft_threshold":2000,"hard_threshold":3000},
	 {"resource":"isilon","resource_type":"persistent","mountpoint":"/home","user":"bob","pi":"smith",
	  "dt":"2017-02-28T06:00:00Z","file_count":50,"logical_usage":500,"physical_usage":600,
	  "soft_threshold":2000,"hard_threshold":3000}
	]`
	st, err := p.IngestStorageJSON(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if st.Ingested != 2 {
		t.Errorf("stats = %s", st)
	}
	series, err := p.Engine.Query(storage.RealmInfo(), aggregate.Request{
		MetricID: storage.MetricFileCount, Period: aggregate.Month,
	})
	if err != nil {
		t.Fatal(err)
	}
	if series[0].Aggregate != 150 {
		t.Errorf("file count = %g, want 150", series[0].Aggregate)
	}
	// Invalid documents are rejected whole.
	if _, err := p.IngestStorageJSON(strings.NewReader(`[{"resource":""}]`)); err == nil {
		t.Error("invalid document accepted")
	}
}

func TestIngestWithoutRealmSetup(t *testing.T) {
	p := &Pipeline{DB: warehouse.Open("empty")}
	if _, err := p.IngestJobRecords([]shredder.JobRecord{jobRec(1)}); err == nil {
		t.Error("jobs ingest without setup must error")
	}
	if _, err := p.IngestCloudEvents(nil, time.Now()); err == nil {
		t.Error("cloud ingest without setup must error")
	}
	if _, err := p.IngestStorageSnapshots(nil); err == nil {
		t.Error("storage ingest without setup must error")
	}
}

package core

import (
	"context"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"xdmodfed/internal/aggregate"
	"xdmodfed/internal/auth"
	"xdmodfed/internal/config"
	"xdmodfed/internal/obs"
	"xdmodfed/internal/realm/jobs"
	"xdmodfed/internal/replicate"
	"xdmodfed/internal/warehouse"
)

// Member is one satellite instance registered with a hub.
type Member struct {
	Name      string
	JoinedAt  time.Time
	Position  uint64    // last committed binlog LSN
	LastBatch time.Time // wall time the last batch (or loose dump) landed
	LastEvent time.Time // origin timestamp of the newest applied event
	Batches   int
	Events    int
}

// Hub is a federation hub: an XDMoD instance of its own (it has a
// warehouse, aggregation engine and authenticator like any other) plus
// the federation machinery — a replication receiver, the per-instance
// commit-position store, the member registry, and the identity map.
type Hub struct {
	*Instance
	Positions *replicate.PositionStore
	Identity  *auth.IdentityMap

	receiver *replicate.Receiver
	now      func() time.Time

	mu       sync.Mutex
	members  map[string]*Member
	dirty    bool   // replicated data not yet folded into hub aggregates
	applyGen uint64 // bumped on every ApplyBatch/LoadLooseDump commit

	// aggMu serializes AggregateFederation runs: concurrent truncate+
	// rebuild passes over the same aggregation tables would double-count
	// facts. ensureMu additionally collapses a queue of EnsureAggregated
	// callers into one rebuild.
	aggMu    sync.Mutex
	ensureMu sync.Mutex
}

// NewHub builds a federation hub from its configuration.
func NewHub(cfg config.InstanceConfig) (*Hub, error) {
	cfg.IsHub = true
	in, err := NewInstance(cfg)
	if err != nil {
		return nil, err
	}
	ps, err := replicate.NewPositionStore(in.DB)
	if err != nil {
		return nil, err
	}
	return &Hub{
		Instance:  in,
		Positions: ps,
		Identity:  auth.NewIdentityMap(),
		now:       time.Now,
		members:   make(map[string]*Member),
	}, nil
}

// Register adds a satellite to the federation's membership. Only
// registered instances may replicate in (the hub's Authorize hook).
func (h *Hub) Register(instance string) error {
	if instance == "" {
		return fmt.Errorf("core: member name must not be empty")
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.members[instance]; ok {
		return fmt.Errorf("core: instance %q is already a federation member", instance)
	}
	h.members[instance] = &Member{Name: instance, JoinedAt: h.now()}
	mHubMembers.Set(float64(len(h.members)))
	coreLog.Info("member registered", "federation", h.Config.Name, "instance", instance)
	return nil
}

// Members returns the registered members, sorted by name.
func (h *Hub) Members() []Member {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]Member, 0, len(h.members))
	for _, m := range h.members {
		out = append(out, *m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// authorize vets a connecting instance.
func (h *Hub) authorize(instance string) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.members[instance]; !ok {
		return fmt.Errorf("core: instance %q is not a registered member of federation %q", instance, h.Config.Name)
	}
	return nil
}

// Resume implements replicate.Sink.
func (h *Hub) Resume(instance string) (uint64, error) {
	return h.Positions.Get(instance), nil
}

// ApplyBatch implements replicate.Sink: events land verbatim in the
// instance's fed_<name> schema ("the federation hub does not alter the
// raw, replicated data from the individual instances", §II-B), the
// commit position advances durably, usernames feed the identity map,
// and the hub marks its aggregates stale.
func (h *Hub) ApplyBatch(instance string, upTo uint64, events []warehouse.Event) error {
	_, sp := obs.StartSpan(context.Background(), "hub.ApplyBatch")
	sp.SetAttr("instance", instance)
	defer sp.End()
	defer mHubBatchSeconds.ObserveSince(time.Now())
	for _, ev := range events {
		if err := h.DB.Apply(ev); err != nil {
			coreLog.Error("apply batch failed", "instance", instance, "lsn", ev.LSN, "err", err)
			return err
		}
		h.observeIdentity(instance, ev)
	}
	if err := h.Positions.Set(instance, upTo); err != nil {
		return err
	}
	mHubApplied.With(instance).Add(uint64(len(events)))
	mMemberPosition.With(instance).Set(float64(upTo))
	h.mu.Lock()
	if m, ok := h.members[instance]; ok {
		m.Position = upTo
		m.LastBatch = h.now()
		if n := len(events); n > 0 {
			if t := events[n-1].Time; !t.IsZero() {
				m.LastEvent = t
			} else {
				m.LastEvent = h.now()
			}
		}
		m.Batches++
		m.Events += len(events)
	}
	if len(events) > 0 {
		h.dirty = true
		h.applyGen++
		// Bump before returning: once ApplyBatch returns, no chart
		// query may serve a result computed against the pre-batch view.
		h.DB.BumpEpoch()
	}
	h.mu.Unlock()
	return nil
}

// observeIdentity feeds job-fact usernames into the identity map so
// the same human on different instances can be linked (§II-D4).
func (h *Hub) observeIdentity(instance string, ev warehouse.Event) {
	if ev.Kind != warehouse.EvInsert || ev.Table != jobs.FactTable {
		return
	}
	// jobfact column order: job_id, resource, username, pi, ...
	if len(ev.Row) > 2 {
		if username, ok := ev.Row[2].(string); ok && username != "" {
			h.Identity.Observe(auth.InstanceUser{Instance: instance, Username: username}, "", "")
		}
	}
}

// Listen starts the hub's tight-replication receiver; returns the
// bound address.
func (h *Hub) Listen(addr string) (string, error) {
	h.receiver = &replicate.Receiver{
		Version:   h.Config.Version,
		Sink:      h,
		Authorize: h.authorize,
	}
	return h.receiver.Listen(addr)
}

// Close stops the receiver.
func (h *Hub) Close() {
	if h.receiver != nil {
		h.receiver.Close()
	}
}

// LoadLooseDump batch-loads a loose-federation dump from a registered
// member ("loose federation", §II-C2). A heterogeneous federation can
// mix tight and loose members freely.
func (h *Hub) LoadLooseDump(instance string, r io.Reader) error {
	if err := h.authorize(instance); err != nil {
		return err
	}
	if err := replicate.Load(h.DB, instance, r); err != nil {
		return err
	}
	h.mu.Lock()
	h.dirty = true
	h.applyGen++
	h.DB.BumpEpoch()
	if m, ok := h.members[instance]; ok {
		m.LastBatch = h.now()
		m.LastEvent = h.now()
		m.Batches++
	}
	h.mu.Unlock()
	return nil
}

// memberSchemas returns the fed_<instance> schemas that exist and hold
// the given fact table.
func (h *Hub) memberSchemas(factTable string) []string {
	var out []string
	for _, m := range h.Members() {
		schemaName := replicate.HubSchema(m.Name)
		if s := h.DB.Schema(schemaName); s != nil && s.Table(factTable) != nil {
			out = append(out, schemaName)
		}
	}
	return out
}

// AggregateFederation rebuilds the hub's aggregation tables from all
// replicated member data plus any data the hub monitors directly,
// using the hub's own aggregation levels ("all raw instance data are
// fully replicated to the master, then aggregated there, according to
// the federation hub's aggregation levels, so no data are lost or
// changed", §II-C3). Returns fact rows aggregated per realm.
func (h *Hub) AggregateFederation() (map[string]int, error) {
	h.aggMu.Lock()
	defer h.aggMu.Unlock()
	_, sp := obs.StartSpan(context.Background(), "hub.AggregateFederation")
	defer sp.End()
	defer mAggSeconds.ObserveSince(time.Now())
	defer mAggRuns.Inc()
	// Snapshot the apply generation before scanning: if another batch
	// lands while this run is in flight, its rows may be missed, so the
	// hub must stay dirty and re-aggregate again on the next query.
	h.mu.Lock()
	gen := h.applyGen
	h.mu.Unlock()
	counts := map[string]int{}
	for _, name := range h.Registry.Names() {
		info, _ := h.Registry.Get(name)
		sources := []string{info.Schema} // hub's own monitored resources, if any
		sources = append(sources, h.memberSchemas(info.FactTable)...)
		n, err := h.Engine.Reaggregate(info, sources)
		if err != nil {
			return counts, err
		}
		counts[name] = n
	}
	h.mu.Lock()
	if h.applyGen == gen {
		h.dirty = false
	}
	h.mu.Unlock()
	return counts, nil
}

// EnsureAggregated folds any pending replicated data into the hub's
// aggregates before a read. A queue of concurrent callers collapses
// into a single rebuild: the first one re-aggregates, the rest observe
// a clean hub and return immediately.
func (h *Hub) EnsureAggregated() error {
	if !h.isDirty() {
		return nil
	}
	h.ensureMu.Lock()
	defer h.ensureMu.Unlock()
	if !h.isDirty() {
		return nil
	}
	_, err := h.AggregateFederation()
	return err
}

func (h *Hub) isDirty() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.dirty
}

// Query answers a chart query over the federation's unified view,
// re-aggregating first when replicated data arrived since the last
// aggregation ("the federation hub can then provide an integrated view
// of job and performance data collected from entirely independent
// XDMoD instances", §II-A).
func (h *Hub) Query(realmName string, req aggregate.Request) ([]aggregate.Series, error) {
	if err := h.EnsureAggregated(); err != nil {
		return nil, err
	}
	return h.Instance.Query(realmName, req)
}

// RegenerateSatellite writes a backup of one member's replicated raw
// data, suitable for Satellite.RestoreFromHubBackup — the paper's
// federation-as-backup use case (§II-E4).
func (h *Hub) RegenerateSatellite(instance string, w io.Writer) error {
	schemaName := replicate.HubSchema(instance)
	if h.DB.Schema(schemaName) == nil {
		return fmt.Errorf("core: no replicated data for instance %q", instance)
	}
	return h.DB.SnapshotSchemas(w, []string{schemaName})
}

// Status summarizes the federation for monitoring and the REST API.
type Status struct {
	Hub     string
	Version string
	Members []Member
	Dirty   bool
}

// Status returns the hub's federation status.
func (h *Hub) Status() Status {
	h.mu.Lock()
	dirty := h.dirty
	h.mu.Unlock()
	return Status{
		Hub:     h.Config.Name,
		Version: h.Config.Version,
		Members: h.Members(),
		Dirty:   dirty,
	}
}

package core

import (
	"context"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"xdmodfed/internal/aggregate"
	"xdmodfed/internal/auth"
	"xdmodfed/internal/config"
	"xdmodfed/internal/faults"
	"xdmodfed/internal/obs"
	"xdmodfed/internal/realm"
	"xdmodfed/internal/realm/jobs"
	"xdmodfed/internal/replicate"
	"xdmodfed/internal/warehouse"
)

// Member is one satellite instance registered with a hub.
type Member struct {
	Name      string
	JoinedAt  time.Time
	Position  uint64    // last committed binlog LSN
	LastBatch time.Time // wall time the last batch (or loose dump) landed
	LastEvent time.Time // origin timestamp of the newest applied event
	Batches   int
	Events    int

	// Replication mode: "" until the member first replicates, then
	// "facts", "pushdown" (aggregation pushdown granted) or "loose".
	Mode string
	// Pushdown bookkeeping: applied delta frames, the bins they
	// carried, the binlog position the newest delta covers, and when
	// the last one landed.
	Deltas       int
	DeltaRows    int
	DeltaCovered uint64
	LastDelta    time.Time

	// pushFacts is the set of realm fact tables the member's current
	// pushdown grant covers; fact inserts on these tables are never
	// folded incrementally (the pagg tables are the realm's source).
	// Replaced wholesale at each negotiation, under Hub.mu.
	pushFacts map[string]bool

	// Circuit-breaker state: a member whose batches repeatedly fail to
	// apply is quarantined (connections bounced with a retry-after)
	// instead of poisoning the apply loop for everyone.
	Failures         int       // consecutive apply failures
	Quarantines      int       // quarantine trips since the last success
	QuarantinedUntil time.Time // zero when not quarantined
	LastError        string    // most recent apply failure, for operators
}

// Quarantined reports whether the member is quarantined at time t.
func (m Member) Quarantined(t time.Time) bool {
	return !m.QuarantinedUntil.IsZero() && t.Before(m.QuarantinedUntil)
}

// realmAggState tracks how one realm's hub aggregation tables relate
// to the replicated raw data. All fields are guarded by Hub.mu.
//
// The incremental fold and the full rebuild coordinate through it:
//
//   - gen counts data arrivals for the realm. A rebuild snapshots it
//     before scanning; if it moved by the time the rebuild finishes,
//     rows may have been missed, so the realm stays dirty.
//   - folding counts in-flight incremental folds. A rebuild waits for
//     it to drain so a fold can never re-add facts the rebuild's scan
//     already counted (or vice versa), and EnsureAggregated waits for
//     it so a reader that has observed replicated raw rows never sees
//     aggregates from before those rows (a batch registers its fold
//     here before its raw rows become visible).
//   - rebuilding blocks new folds (they mark their shards dirty
//     instead), so a fold can never land between a rebuild's scan and
//     its install.
//
// dirtyShards is tracked per aggregation shard: a non-additive batch
// or a loose reload dirties only the shards its source schema feeds
// (every shard under resource routing, one under source-schema
// routing), and EnsureAggregated rebuilds exactly the dirty shards.
type realmAggState struct {
	dirtyShards map[int]bool // shards whose aggregates may lag raw data
	gen         uint64       // bumped whenever replicated data for this realm lands
	rebuilding  bool         // a rebuild is in flight
	folding     int          // in-flight incremental folds
}

// dirtyAny reports whether any shard needs a rebuild.
func (st *realmAggState) dirtyAny() bool { return len(st.dirtyShards) > 0 }

// markDirtyLocked records that the shards fed by sourceSchema may lag
// the raw data. An empty sourceSchema (unknown origin) dirties every
// shard. Caller must hold h.mu.
func (h *Hub) markDirtyLocked(st *realmAggState, info realm.Info, sourceSchema string) {
	if st.dirtyShards == nil {
		st.dirtyShards = make(map[int]bool)
	}
	if sourceSchema == "" {
		for k := 0; k < h.Engine.NumShards(); k++ {
			st.dirtyShards[k] = true
		}
		return
	}
	for _, k := range h.Engine.ShardsForSourceSchema(info, sourceSchema) {
		st.dirtyShards[k] = true
	}
}

// Hub is a federation hub: an XDMoD instance of its own (it has a
// warehouse, aggregation engine and authenticator like any other) plus
// the federation machinery — a replication receiver, the per-instance
// commit-position store, the member registry, and the identity map.
type Hub struct {
	*Instance
	Positions *replicate.PositionStore
	Identity  *auth.IdentityMap

	// Telemetry scrapes member /metrics and /healthz endpoints and
	// re-exports them on the hub (telemetry federation). Always non-nil
	// on a hub; it scrapes nothing until targets are configured. The
	// daemon starts its loop with Telemetry.Run.
	Telemetry *obs.Federator

	// Faults, when set before Listen, injects connection faults on
	// every replication conn the hub accepts (chaos tests only).
	Faults *faults.Registry

	receiver *replicate.Receiver
	now      func() time.Time

	// Quarantine circuit-breaker knobs (config replication section).
	// quarThreshold 0 disables quarantine.
	quarThreshold int
	quarBackoff   time.Duration
	quarMax       time.Duration
	heartbeat     time.Duration
	maxFrame      int64

	mu      sync.Mutex
	cond    *sync.Cond // broadcast on fold/rebuild transitions
	members map[string]*Member
	realms  map[string]*realmAggState // realm name -> aggregation state

	// factRealms maps a realm fact table name to its realm, so the
	// apply path can classify replicated events per realm.
	factRealms map[string]realm.Info

	// noIncremental (config aggregation.disable_incremental) forces
	// every batch onto the mark-dirty / full-rebuild path.
	noIncremental bool

	// aggMu serializes full AggregateFederation passes (the admin /
	// config-change path). ensureMu additionally collapses a queue of
	// EnsureAggregated callers into one rebuild of the dirty realms.
	aggMu    sync.Mutex
	ensureMu sync.Mutex
}

// NewHub builds a federation hub from its configuration.
func NewHub(cfg config.InstanceConfig) (*Hub, error) {
	cfg.IsHub = true
	in, err := NewInstance(cfg)
	if err != nil {
		return nil, err
	}
	ps, err := replicate.NewPositionStore(in.DB)
	if err != nil {
		return nil, err
	}
	hb, err := cfg.Replication.HeartbeatDuration()
	if err != nil {
		return nil, err
	}
	quarBackoff, err := cfg.Replication.QuarantineBackoffDuration()
	if err != nil {
		return nil, err
	}
	quarMax, err := cfg.Replication.QuarantineMaxBackoffDuration()
	if err != nil {
		return nil, err
	}
	scrapeInterval, err := cfg.Telemetry.ScrapeIntervalDuration()
	if err != nil {
		return nil, err
	}
	scrapeTimeout, err := cfg.Telemetry.ScrapeTimeoutDuration()
	if err != nil {
		return nil, err
	}
	var targets []obs.MemberTarget
	for _, m := range cfg.Telemetry.Members {
		targets = append(targets, obs.MemberTarget{Name: m.Name, Addr: m.Addr})
	}
	h := &Hub{
		Instance:      in,
		Positions:     ps,
		Identity:      auth.NewIdentityMap(),
		Telemetry:     obs.NewFederator(targets, scrapeInterval, scrapeTimeout),
		now:           time.Now,
		members:       make(map[string]*Member),
		realms:        make(map[string]*realmAggState),
		factRealms:    make(map[string]realm.Info),
		noIncremental: in.Config.Aggregation.DisableIncremental,
		quarThreshold: cfg.Replication.Threshold(),
		quarBackoff:   quarBackoff,
		quarMax:       quarMax,
		heartbeat:     hb,
		maxFrame:      cfg.Replication.MaxFrameBytes,
	}
	h.cond = sync.NewCond(&h.mu)
	for _, name := range in.Registry.Names() {
		info, _ := in.Registry.Get(name)
		h.realms[name] = &realmAggState{}
		h.factRealms[info.FactTable] = info
	}
	return h, nil
}

// realmStateLocked returns the aggregation state for a realm, creating
// it if needed. Caller must hold h.mu.
func (h *Hub) realmStateLocked(name string) *realmAggState {
	st, ok := h.realms[name]
	if !ok {
		st = &realmAggState{}
		h.realms[name] = st
	}
	return st
}

// Register adds a satellite to the federation's membership. Only
// registered instances may replicate in (the hub's Authorize hook).
func (h *Hub) Register(instance string) error {
	if instance == "" {
		return fmt.Errorf("core: member name must not be empty")
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.members[instance]; ok {
		return fmt.Errorf("core: instance %q is already a federation member", instance)
	}
	h.members[instance] = &Member{Name: instance, JoinedAt: h.now()}
	mHubMembers.Set(float64(len(h.members)))
	coreLog.Info("member registered", "federation", h.Config.Name, "instance", instance)
	return nil
}

// Members returns the registered members, sorted by name.
func (h *Hub) Members() []Member {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]Member, 0, len(h.members))
	for _, m := range h.members {
		out = append(out, *m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// authorize vets a connecting instance. A quarantined member is
// bounced with a RetryAfter matching the remaining quarantine, so its
// sender sleeps instead of hammering the hub with doomed batches.
func (h *Hub) authorize(instance string) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	m, ok := h.members[instance]
	if !ok {
		return fmt.Errorf("core: instance %q is not a registered member of federation %q", instance, h.Config.Name)
	}
	if now := h.now(); m.Quarantined(now) {
		return &replicate.RetryAfterError{
			After:  m.QuarantinedUntil.Sub(now),
			Reason: fmt.Sprintf("core: member %q is quarantined after %d apply failures: %s", instance, m.Failures, m.LastError),
		}
	}
	return nil
}

// Resume implements replicate.Sink.
func (h *Hub) Resume(instance string) (uint64, error) {
	return h.Positions.Get(instance), nil
}

// NegotiatePushdown implements replicate.PushdownSink: it vets a
// connecting member's aggregation-pushdown offer. A grant requires the
// satellite's aggregation levels to match the hub's exactly (bins
// rendered with different levels would not merge meaningfully) and
// every offered realm to be mergeable; a miss on either declines
// softly and the connection replicates raw facts. The reverse switch
// is guarded hard: a member that previously pushed partial aggregates
// (its schema holds pagg tables) may not silently reconnect in facts
// mode — the stale hub-side bins would keep feeding rebuilds — so the
// handshake is rejected until the operator resyncs the member.
func (h *Hub) NegotiatePushdown(instance string, req replicate.PushdownRequest) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	m, ok := h.members[instance]
	if !ok {
		return fmt.Errorf("core: instance %q is not a registered member", instance)
	}
	schema := replicate.HubSchema(instance)
	if !req.Enabled {
		for _, name := range h.Registry.Names() {
			info, _ := h.Registry.Get(name)
			if h.Engine.HasPagg(info, schema) {
				return fmt.Errorf(
					"core: member %q previously replicated realm %q as partial aggregates; reconnecting in facts mode requires a resync (drop schema %s first)",
					instance, name, schema)
			}
		}
		m.Mode = "facts"
		m.pushFacts = nil
		return nil
	}
	if hd := h.Engine.LevelsDigest(); req.LevelsDigest != hd {
		return fmt.Errorf("%w: aggregation levels differ (hub %s, satellite %s)",
			replicate.ErrPushdownDeclined, hd, req.LevelsDigest)
	}
	facts := make(map[string]bool, len(req.Realms))
	for _, name := range req.Realms {
		info, ok := h.Registry.Get(name)
		if !ok {
			return fmt.Errorf("%w: hub has no realm %q", replicate.ErrPushdownDeclined, name)
		}
		if err := aggregate.MergeableRealm(info); err != nil {
			return fmt.Errorf("%w: %v", replicate.ErrPushdownDeclined, err)
		}
		facts[info.FactTable] = true
	}
	// The mode-switch guard applies per realm: pagg residue for a realm
	// missing from the new grant would keep feeding rebuilds stale bins.
	for _, name := range h.Registry.Names() {
		info, _ := h.Registry.Get(name)
		if !facts[info.FactTable] && h.Engine.HasPagg(info, schema) {
			return fmt.Errorf(
				"core: member %q previously replicated realm %q as partial aggregates; dropping it from the pushdown grant requires a resync (drop schema %s first)",
				instance, name, schema)
		}
	}
	m.Mode = "pushdown"
	m.pushFacts = facts
	coreLog.Info("aggregation pushdown granted",
		"federation", h.Config.Name, "instance", instance, "realms", req.Realms)
	return nil
}

// pushdownFactsFor returns the member's granted pushdown fact tables
// (nil when none). The map is replaced wholesale at negotiation and
// never mutated, so reading it without the lock afterwards is safe.
func (h *Hub) pushdownFactsFor(instance string) map[string]bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	if m, ok := h.members[instance]; ok {
		return m.pushFacts
	}
	return nil
}

// ApplyDeltas implements replicate.PushdownSink: a granted member's
// partial-aggregate deltas land in its pagg tables (the durable,
// idempotent bin store) and the touched aggregation shards are marked
// dirty for rebuild — a reset delta dirties every shard its schema
// feeds, since bins may also have disappeared. Like ApplyBatch, each
// realm bumps its generation after the apply so a rebuild that was
// scanning mid-apply can never clear the dirty marks while missing
// these bins.
func (h *Hub) ApplyDeltas(ctx context.Context, instance string, upTo uint64, deltas []aggregate.Delta) error {
	sctx, sp := obs.StartSpan(ctx, "hub.ApplyDeltas")
	sp.SetAttr("instance", instance)
	defer sp.End()
	if err := h.quarantineGate(instance); err != nil {
		return err
	}
	schema := replicate.HubSchema(instance)
	granted := h.pushdownFactsFor(instance)
	rows := 0
	var covered uint64
	for _, d := range deltas {
		info, ok := h.Registry.Get(d.Realm)
		if !ok {
			return fmt.Errorf("core: hub has no realm %q", d.Realm)
		}
		if !granted[info.FactTable] {
			return fmt.Errorf("core: realm %q is not pushdown-granted for member %q", d.Realm, instance)
		}
		_, dsp := obs.StartSpan(sctx, "hub.ApplyDelta")
		dsp.SetAttr("realm", d.Realm)
		shards, n, err := h.Engine.ApplyDelta(info, schema, d)
		dsp.End()
		h.mu.Lock()
		st := h.realmStateLocked(d.Realm)
		st.gen++
		switch {
		case err != nil || d.Reset:
			h.markDirtyLocked(st, info, schema)
		default:
			if st.dirtyShards == nil {
				st.dirtyShards = make(map[int]bool)
			}
			for _, k := range shards {
				st.dirtyShards[k] = true
			}
		}
		h.cond.Broadcast()
		h.mu.Unlock()
		if err != nil {
			coreLog.Error("pushdown delta apply failed",
				"instance", instance, "realm", d.Realm, "err", err)
			h.noteApplyFailure(instance, err)
			return err
		}
		rows += n
		if d.CoveredLSN > covered {
			covered = d.CoveredLSN
		}
	}
	h.mu.Lock()
	if m, ok := h.members[instance]; ok {
		m.Deltas += len(deltas)
		m.DeltaRows += rows
		if covered > m.DeltaCovered {
			m.DeltaCovered = covered
		}
		now := h.now()
		m.LastDelta = now
		m.LastBatch = now
	}
	h.mu.Unlock()
	return nil
}

// realmDelta classifies one batch's effect on a single realm.
type realmDelta struct {
	info   realm.Info
	schema string  // hub schema the realm's insert events landed in
	rows   [][]any // insert rows, foldable incrementally
	dirty  bool    // non-additive mutation seen; realm needs a rebuild
}

// ApplyBatch implements replicate.Sink: events land verbatim in the
// instance's fed_<name> schema ("the federation hub does not alter the
// raw, replicated data from the individual instances", §II-B), the
// commit position advances durably, and usernames feed the identity
// map. Insert events on realm fact tables are folded straight into the
// hub's aggregation tables (aggregation is additive), so the first
// chart query after a batch pays O(batch) instead of O(all facts);
// non-additive mutations mark just their realm dirty for rebuild.
func (h *Hub) ApplyBatch(instance string, upTo uint64, events []warehouse.Event) error {
	return h.ApplyBatchCtx(context.Background(), instance, upTo, events)
}

// ApplyBatchCtx implements replicate.ContextSink: when ctx carries the
// replication frame's trace context, the apply span (and the fold
// spans under it) join the satellite's trace, so one TraceID covers
// the ingest commit, the replication send, the hub apply and the
// incremental aggregation fold across both processes.
func (h *Hub) ApplyBatchCtx(ctx context.Context, instance string, upTo uint64, events []warehouse.Event) error {
	sctx, sp := obs.StartSpan(ctx, "hub.ApplyBatch")
	sp.SetAttr("instance", instance)
	defer sp.End()
	defer mHubBatchSeconds.ObserveSince(time.Now())
	if err := h.quarantineGate(instance); err != nil {
		return err
	}
	// Classify the batch and register its aggregation work BEFORE the
	// raw rows become visible: a fold increments folding, a non-additive
	// batch marks its shards dirty. Any reader that later observes the
	// replicated raw rows and calls EnsureAggregated therefore either
	// finds the registration (and waits for the fold / rebuilds the
	// shard) or the aggregation already done — raw data can never be
	// ahead of what EnsureAggregated accounts for.
	deltas := map[string]*realmDelta{}
	pushFacts := h.pushdownFactsFor(instance)
	for _, ev := range events {
		if pushFacts[ev.Table] {
			// Pushdown-granted realm: its bins arrive as deltas and live
			// in the pagg tables; a stray raw fact event must never be
			// folded on top (the rows still land verbatim below).
			continue
		}
		h.classifyEvent(deltas, ev)
	}
	var folds, dirtied []*realmDelta
	h.mu.Lock()
	for name, d := range deltas {
		st := h.realmStateLocked(name)
		st.gen++
		if d.dirty || h.noIncremental || st.dirtyAny() || st.rebuilding {
			// Either the batch itself is non-additive, or the realm
			// already needs (or is getting) a rebuild that will cover
			// these rows from the raw tables.
			h.markDirtyLocked(st, d.info, d.schema)
			dirtied = append(dirtied, d)
			continue
		}
		st.folding++
		folds = append(folds, d)
	}
	h.mu.Unlock()
	// settle closes out the registrations once the raw apply's outcome
	// is known: failed folds downgrade to dirty shards (the applied
	// prefix is covered by a rebuild from the raw tables), and realms
	// that went dirty bump gen again so a rebuild that scanned mid-apply
	// can never clear them while missing this batch's rows.
	settle := func(foldsOK bool) {
		h.mu.Lock()
		if !foldsOK {
			for _, d := range folds {
				st := h.realmStateLocked(d.info.Name)
				st.folding--
				h.markDirtyLocked(st, d.info, d.schema)
			}
		}
		for _, d := range dirtied {
			h.realmStateLocked(d.info.Name).gen++
		}
		h.cond.Broadcast()
		h.mu.Unlock()
	}

	// The whole batch lands as one write transaction: one lock
	// acquisition and one columnar-snapshot publish per touched table.
	// On failure the applied prefix stays applied (matching the old
	// per-event behavior), identity bookkeeping covers exactly that
	// prefix, and the affected realms are rebuilt from the raw tables.
	applied, err := h.DB.ApplyAll(events)
	for _, ev := range events[:applied] {
		h.observeIdentity(instance, ev)
	}
	if err != nil {
		settle(false)
		lsn := uint64(0)
		if applied < len(events) {
			lsn = events[applied].LSN
		}
		coreLog.Error("apply batch failed", "instance", instance, "lsn", lsn, "err", err)
		h.noteApplyFailure(instance, err)
		return err
	}
	if err := h.Positions.Set(instance, upTo); err != nil {
		settle(false)
		return err
	}
	mHubApplied.With(instance).Add(uint64(len(events)))
	mMemberPosition.With(instance).Set(float64(upTo))

	h.mu.Lock()
	if m, ok := h.members[instance]; ok {
		m.Position = upTo
		m.LastBatch = h.now()
		if n := len(events); n > 0 {
			if t := events[n-1].Time; !t.IsZero() {
				m.LastEvent = t
			} else {
				m.LastEvent = h.now()
			}
		}
		m.Batches++
		m.Events += len(events)
		// A successfully applied batch closes the circuit breaker.
		if m.Failures > 0 || m.Quarantines > 0 || !m.QuarantinedUntil.IsZero() {
			m.Failures = 0
			m.Quarantines = 0
			m.QuarantinedUntil = time.Time{}
			m.LastError = ""
			mMemberQuarantined.With(instance).Set(0)
		}
	}
	h.mu.Unlock()

	for _, d := range folds {
		_, fsp := obs.StartSpan(sctx, "hub.IncrementalFold")
		fsp.SetAttr("realm", d.info.Name)
		fsp.SetAttr("rows", fmt.Sprintf("%d", len(d.rows)))
		_, err := h.Engine.ApplyFactRows(d.info, d.schema, d.rows)
		fsp.End()
		h.mu.Lock()
		st := h.realmStateLocked(d.info.Name)
		st.folding--
		if err != nil {
			// The fold may be partial; the raw rows are safely applied,
			// so a rebuild of the schema's shards restores consistency.
			h.markDirtyLocked(st, d.info, d.schema)
			coreLog.Error("incremental fold failed; shards queued for rebuild",
				"instance", instance, "realm", d.info.Name, "err", err)
		}
		h.cond.Broadcast()
		h.mu.Unlock()
	}
	settle(true)
	// No explicit epoch bump: every commit above (raw apply, fold
	// installs) bumped its own schema shard's epoch, so once ApplyBatch
	// returns no chart query can serve a result computed against the
	// pre-batch view of the schemas this batch touched — while cached
	// charts of untouched realms stay valid.
	return nil
}

// quarantineGate rejects batches from a quarantined member with the
// remaining backoff. Authorization already bounces quarantined members
// at handshake; this covers connections that were already streaming
// when the breaker tripped.
func (h *Hub) quarantineGate(instance string) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	m, ok := h.members[instance]
	if !ok {
		return nil
	}
	if now := h.now(); m.Quarantined(now) {
		return &replicate.RetryAfterError{
			After:  m.QuarantinedUntil.Sub(now),
			Reason: fmt.Sprintf("core: member %q is quarantined", instance),
		}
	}
	return nil
}

// noteApplyFailure counts one failed batch apply against the member's
// circuit breaker, tripping a quarantine at the configured threshold.
// The failure count deliberately survives the quarantine window: once
// it expires, the sender's next batch is a half-open probe, and a
// single further failure re-trips the breaker with a doubled backoff
// (capped), while one success resets everything.
func (h *Hub) noteApplyFailure(instance string, cause error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	m, ok := h.members[instance]
	if !ok || h.quarThreshold <= 0 {
		return
	}
	m.Failures++
	m.LastError = cause.Error()
	if m.Failures < h.quarThreshold {
		return
	}
	backoff := h.quarBackoff << uint(m.Quarantines)
	if backoff <= 0 || backoff > h.quarMax {
		backoff = h.quarMax
	}
	m.QuarantinedUntil = h.now().Add(backoff)
	m.Quarantines++
	mMemberQuarantined.With(instance).Set(1)
	mQuarantines.With(instance).Inc()
	coreLog.Error("member quarantined",
		"instance", instance, "failures", m.Failures, "backoff", backoff, "err", cause)
}

// classifyEvent sorts one applied event into its realm's delta: fact
// inserts are foldable, any other fact-table mutation forces a rebuild,
// and events off the fact tables (DDL, detail tables, bookkeeping)
// never touch the aggregates at all.
func (h *Hub) classifyEvent(deltas map[string]*realmDelta, ev warehouse.Event) {
	info, ok := h.factRealms[ev.Table]
	if !ok {
		return
	}
	switch ev.Kind {
	case warehouse.EvCreateSchema, warehouse.EvCreateTable:
		return // DDL creates empty tables; nothing to aggregate
	}
	d := deltas[info.Name]
	if d == nil {
		d = &realmDelta{info: info, schema: ev.Schema}
		deltas[info.Name] = d
	}
	if d.dirty {
		return
	}
	if ev.Kind != warehouse.EvInsert || ev.Schema != d.schema {
		// Updates/deletes/truncates are not additive; inserts split
		// across schemas within one batch (not produced by the
		// rewriter, but possible through the Sink interface) would
		// need per-schema folds — both fall back to a rebuild.
		d.dirty = true
		d.rows = nil
		return
	}
	d.rows = append(d.rows, ev.Row)
}

// observeIdentity feeds job-fact usernames into the identity map so
// the same human on different instances can be linked (§II-D4). The
// username offset is resolved from the replicated table's definition —
// never hardcoded — so a fact-table column reorder cannot silently
// poison the identity map.
func (h *Hub) observeIdentity(instance string, ev warehouse.Event) {
	if ev.Table != jobs.FactTable {
		return
	}
	switch ev.Kind {
	case warehouse.EvInsert:
		tab, err := h.DB.TableIn(ev.Schema, ev.Table)
		if err != nil {
			return
		}
		i, ok := tab.ColumnIndex(jobs.ColUser)
		if !ok || i >= len(ev.Row) {
			return
		}
		if username, ok := ev.Row[i].(string); ok && username != "" {
			h.Identity.Observe(auth.InstanceUser{Instance: instance, Username: username}, "", "")
		}
	case warehouse.EvLoad:
		// Bulk loads (backup restores, re-ships) carry the usernames in
		// the columnar payload; the column is located by name there.
		if ev.Cols == nil {
			return
		}
		for i, name := range ev.Cols.Names {
			if name != jobs.ColUser {
				continue
			}
			seen := map[string]bool{}
			for _, username := range ev.Cols.Cols[i].Strs {
				if username != "" && !seen[username] {
					seen[username] = true
					h.Identity.Observe(auth.InstanceUser{Instance: instance, Username: username}, "", "")
				}
			}
			return
		}
	}
}

// Listen starts the hub's tight-replication receiver; returns the
// bound address.
func (h *Hub) Listen(addr string) (string, error) {
	h.receiver = &replicate.Receiver{
		Version:           h.Config.Version,
		Sink:              h,
		Authorize:         h.authorize,
		HeartbeatInterval: h.heartbeat,
		MaxFrameBytes:     h.maxFrame,
		Faults:            h.Faults,
	}
	return h.receiver.Listen(addr)
}

// Close stops the receiver.
func (h *Hub) Close() {
	if h.receiver != nil {
		h.receiver.Close()
	}
}

// LoadLooseDump batch-loads a loose-federation dump from a registered
// member ("loose federation", §II-C2). A heterogeneous federation can
// mix tight and loose members freely. A loose load replaces whole
// tables (periodic re-ships supersede earlier ones), which the
// additive fold cannot express, so each realm whose fact table was
// (re)loaded is marked dirty for rebuild.
func (h *Hub) LoadLooseDump(instance string, r io.Reader) error {
	if err := h.authorize(instance); err != nil {
		return err
	}
	loaded, err := replicate.Load(h.DB, instance, r)
	if err != nil {
		return err
	}
	loadedSet := make(map[string]bool, len(loaded))
	for _, t := range loaded {
		loadedSet[t] = true
	}
	schema := replicate.HubSchema(instance)
	var touched []string
	var newest time.Time
	for _, name := range h.Registry.Names() {
		info, _ := h.Registry.Get(name)
		if !loadedSet[info.FactTable] {
			continue
		}
		touched = append(touched, name)
		if t := h.newestFactTime(schema, info); t.After(newest) {
			newest = t
		}
	}
	h.mu.Lock()
	for _, name := range touched {
		info, _ := h.Registry.Get(name)
		st := h.realmStateLocked(name)
		st.gen++
		// Only the shards this member's schema feeds go dirty: under
		// source-schema routing a re-shipped dump costs one shard's
		// rebuild, and charts over the other shards stay cached. The
		// load's own commits bumped the raw schema's epoch already.
		h.markDirtyLocked(st, info, schema)
	}
	if m, ok := h.members[instance]; ok {
		m.Mode = "loose"
		m.LastBatch = h.now()
		// LastEvent reflects data age, not load time: /healthz member
		// freshness must expose a member shipping week-old dumps.
		if !newest.IsZero() {
			m.LastEvent = newest
		}
		m.Batches++
	}
	h.mu.Unlock()
	return nil
}

// newestFactTime returns the newest fact timestamp in one replicated
// realm fact table (zero when the table is absent or empty).
func (h *Hub) newestFactTime(schema string, info realm.Info) time.Time {
	tab, err := h.DB.TableIn(schema, info.FactTable)
	if err != nil {
		return time.Time{}
	}
	var newest time.Time
	h.DB.View(func() error {
		tab.Scan(func(r warehouse.Row) bool {
			if t, ok := r.Get(info.TimeColumn).(time.Time); ok && t.After(newest) {
				newest = t
			}
			return true
		})
		return nil
	})
	return newest
}

// realmSources returns one realm's rebuild sources: the hub's own
// schema (facts) plus, per member in name order, either the member's
// pagg tables (pushdown — the hub never holds those raw facts) or its
// replicated fact table when present. Pagg presence wins: it is the
// durable record that the member replicates in pushdown mode.
func (h *Hub) realmSources(info realm.Info) []aggregate.Source {
	sources := []aggregate.Source{{Schema: info.Schema}} // hub's own monitored resources, if any
	for _, m := range h.Members() {
		schemaName := replicate.HubSchema(m.Name)
		if h.Engine.HasPagg(info, schemaName) {
			sources = append(sources, aggregate.Source{Schema: schemaName, Pushdown: true})
		} else if s := h.DB.Schema(schemaName); s != nil && s.Table(info.FactTable) != nil {
			sources = append(sources, aggregate.Source{Schema: schemaName})
		}
	}
	return sources
}

// rebuildRealm rebuilds one realm's aggregation tables from all member
// schemas plus the hub's own, coordinating with the incremental fold
// path: it waits for in-flight folds to drain, blocks new folds while
// running (they mark their shards dirty instead), and only clears the
// rebuilt shards when no new data landed mid-rebuild. With all=true
// every shard is rebuilt (the admin / config-change path); with
// all=false only the currently dirty shards are, so a loose reload of
// one member schema under source-schema routing pays for its one shard.
func (h *Hub) rebuildRealm(name string, all bool) (int, error) {
	info, ok := h.Registry.Get(name)
	if !ok {
		return 0, fmt.Errorf("core: hub has no realm %q", name)
	}
	sources := h.realmSources(info)

	h.mu.Lock()
	st := h.realmStateLocked(name)
	for st.rebuilding || st.folding > 0 {
		h.cond.Wait()
	}
	var shards []int // nil = all
	if !all {
		if !st.dirtyAny() {
			h.mu.Unlock()
			return 0, nil
		}
		shards = make([]int, 0, len(st.dirtyShards))
		for k := range st.dirtyShards {
			shards = append(shards, k)
		}
		sort.Ints(shards)
	}
	st.rebuilding = true
	gen0 := st.gen
	h.mu.Unlock()

	var n int
	var err error
	if shards == nil {
		n, err = h.Engine.ReaggregateFrom(info, sources)
	} else {
		n, err = h.Engine.ReaggregateShardsFrom(info, sources, shards)
	}

	h.mu.Lock()
	st.rebuilding = false
	if err != nil {
		h.markDirtyLocked(st, info, "")
	} else if st.gen == gen0 {
		// No data landed while scanning: the rebuilt shards are current.
		// Otherwise everything stays dirty and the next read rebuilds —
		// a batch that landed mid-scan may or may not be in the result.
		if shards == nil {
			st.dirtyShards = nil
		} else {
			for _, k := range shards {
				delete(st.dirtyShards, k)
			}
		}
	}
	h.cond.Broadcast()
	h.mu.Unlock()
	return n, err
}

// AggregateFederation rebuilds the hub's aggregation tables for every
// realm from all replicated member data plus any data the hub monitors
// directly, using the hub's own aggregation levels ("all raw instance
// data are fully replicated to the master, then aggregated there,
// according to the federation hub's aggregation levels, so no data are
// lost or changed", §II-C3). This is the config-change / admin path;
// routine reads use EnsureAggregated, which rebuilds only dirty
// realms. Returns fact rows aggregated per realm.
func (h *Hub) AggregateFederation() (map[string]int, error) {
	h.aggMu.Lock()
	defer h.aggMu.Unlock()
	_, sp := obs.StartSpan(context.Background(), "hub.AggregateFederation")
	defer sp.End()
	defer mAggSeconds.ObserveSince(time.Now())
	defer mAggRuns.Inc()
	counts := map[string]int{}
	for _, name := range h.Registry.Names() {
		n, err := h.rebuildRealm(name, true)
		if err != nil {
			return counts, err
		}
		counts[name] = n
	}
	return counts, nil
}

// EnsureAggregated brings every dirty shard's aggregates current
// before a read. It first waits for in-flight incremental folds to
// drain: a batch registers its fold before its raw rows become
// visible, so a reader that polls the raw tables and then calls
// EnsureAggregated is guaranteed aggregates covering every raw row it
// saw. Realms kept current by the fold then cost nothing here. A
// queue of concurrent callers collapses into a single rebuild: the
// first one rebuilds the dirty shards, the rest observe a clean hub
// and return immediately.
func (h *Hub) EnsureAggregated() error {
	h.mu.Lock()
	pending := h.anyFoldingLocked() || h.anyDirtyLocked()
	h.mu.Unlock()
	if !pending {
		return nil
	}
	h.ensureMu.Lock()
	defer h.ensureMu.Unlock()
	h.mu.Lock()
	for h.anyFoldingLocked() {
		h.cond.Wait()
	}
	h.mu.Unlock()
	for _, name := range h.dirtyRealms() {
		if _, err := h.rebuildRealm(name, false); err != nil {
			return err
		}
	}
	return nil
}

func (h *Hub) anyFoldingLocked() bool {
	for _, st := range h.realms {
		if st.folding > 0 {
			return true
		}
	}
	return false
}

func (h *Hub) anyDirtyLocked() bool {
	for _, st := range h.realms {
		if st.dirtyAny() {
			return true
		}
	}
	return false
}

// dirtyRealms returns the realms with shards needing a rebuild,
// sorted by name.
func (h *Hub) dirtyRealms() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	var out []string
	for name, st := range h.realms {
		if st.dirtyAny() {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// Query answers a chart query over the federation's unified view,
// re-aggregating any dirty realm first ("the federation hub can then
// provide an integrated view of job and performance data collected
// from entirely independent XDMoD instances", §II-A).
func (h *Hub) Query(realmName string, req aggregate.Request) ([]aggregate.Series, error) {
	if err := h.EnsureAggregated(); err != nil {
		return nil, err
	}
	return h.Instance.Query(realmName, req)
}

// RegenerateSatellite writes a backup of one member's replicated raw
// data, suitable for Satellite.RestoreFromHubBackup — the paper's
// federation-as-backup use case (§II-E4).
func (h *Hub) RegenerateSatellite(instance string, w io.Writer) error {
	schemaName := replicate.HubSchema(instance)
	if h.DB.Schema(schemaName) == nil {
		return fmt.Errorf("core: no replicated data for instance %q", instance)
	}
	return h.DB.SnapshotSchemas(w, []string{schemaName})
}

// Status summarizes the federation for monitoring and the REST API.
type Status struct {
	Hub         string
	Version     string
	Members     []Member
	Dirty       bool     // any realm pending rebuild
	DirtyRealms []string // realms pending rebuild, sorted
}

// Status returns the hub's federation status.
func (h *Hub) Status() Status {
	dr := h.dirtyRealms()
	return Status{
		Hub:         h.Config.Name,
		Version:     h.Config.Version,
		Members:     h.Members(),
		Dirty:       len(dr) > 0,
		DirtyRealms: dr,
	}
}

package core

import (
	"context"
	"fmt"
	"testing"
	"time"

	"xdmodfed/internal/aggregate"
	"xdmodfed/internal/realm/jobs"
	"xdmodfed/internal/shredder"
	"xdmodfed/internal/workload"
)

// TestScaleFederation pushes a moderately large federation through the
// full stack: six satellites, two thousand jobs each, replicated live
// over TCP and re-aggregated on the hub. Asserts exact conservation of
// counts, CPU hours and XD SUs across ingest → replication → hub
// aggregation.
func TestScaleFederation(t *testing.T) {
	if testing.Short() {
		t.Skip("federates 12k jobs over TCP")
	}
	const nSats = 6
	const jobsPerSat = 2000

	hub, err := NewHub(hubCfg("hub"))
	if err != nil {
		t.Fatal(err)
	}
	addr, err := hub.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var wantCPUH float64
	for i := 0; i < nSats; i++ {
		name := fmt.Sprintf("site%d", i)
		resource := fmt.Sprintf("cluster%d", i)
		if err := hub.Register(name); err != nil {
			t.Fatal(err)
		}
		sat, err := NewSatellite(satCfg(name, []string{resource}, addr))
		if err != nil {
			t.Fatal(err)
		}
		recs := workload.GenerateJobs(workload.ResourceModel{
			Name: resource, CoresPerNode: 16, MaxNodes: 8, SUFactor: 1,
			MonthlyWeight: [12]float64{1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1},
			MeanWallHours: 3, QueueNames: []string{"batch"}, Users: 12,
		}, jobsPerSat/12, int64(i))
		// Generator count is weight-derived; top up to the exact target.
		for len(recs) < jobsPerSat {
			base := time.Date(2017, 6, 1, 0, 0, 0, 0, time.UTC)
			recs = append(recs, shredder.JobRecord{
				LocalJobID: int64(1000000 + len(recs)), User: "filler", Account: "acct",
				Resource: resource, Queue: "batch", Nodes: 1, Cores: 4,
				Submit: base, Start: base.Add(time.Minute), End: base.Add(time.Hour),
			})
		}
		recs = recs[:jobsPerSat]
		for _, r := range recs {
			wantCPUH += r.CPUHours()
		}
		st, err := sat.Pipeline.IngestJobRecords(recs)
		if err != nil {
			t.Fatal(err)
		}
		if st.Ingested != jobsPerSat {
			t.Fatalf("%s ingested %d", name, st.Ingested)
		}
		if err := sat.StartFederation(ctx); err != nil {
			t.Fatal(err)
		}
		defer sat.StopFederation()
	}

	start := time.Now()
	deadline := time.Now().Add(60 * time.Second)
	for {
		total := 0
		for i := 0; i < nSats; i++ {
			total += hub.DB.Count(fmt.Sprintf("fed_site%d", i), jobs.FactTable)
		}
		if total == nSats*jobsPerSat {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replication stalled at %d/%d rows", total, nSats*jobsPerSat)
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Logf("replicated %d rows from %d satellites in %v", nSats*jobsPerSat, nSats, time.Since(start))

	aggStart := time.Now()
	series, err := hub.Query("Jobs", aggregate.Request{MetricID: jobs.MetricCPUHours, Period: aggregate.Year})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("hub aggregation + query took %v", time.Since(aggStart))
	var got float64
	for _, s := range series {
		got += s.Aggregate
	}
	if diff := got - wantCPUH; diff > 1e-3 || diff < -1e-3 {
		t.Errorf("federated CPU hours = %f, want %f", got, wantCPUH)
	}

	count, err := hub.Query("Jobs", aggregate.Request{MetricID: jobs.MetricNumJobs, GroupBy: jobs.DimResource, Period: aggregate.Year})
	if err != nil {
		t.Fatal(err)
	}
	if len(count) != nSats {
		t.Fatalf("resources on hub = %d", len(count))
	}
	for _, s := range count {
		if s.Aggregate != jobsPerSat {
			t.Errorf("resource %s = %g jobs", s.Group, s.Aggregate)
		}
	}
}

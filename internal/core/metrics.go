package core

import (
	"xdmodfed/internal/obs"
)

// Federation-core instrumentation: hub apply path, membership, and
// aggregation runs (both the hub's federation-wide pass and each
// instance's daily pass).
var (
	mHubMembers = obs.Default.Gauge("xdmodfed_hub_members",
		"Number of satellite instances registered with this hub.")
	mHubApplied = obs.Default.CounterVec("xdmodfed_hub_applied_events_total",
		"Replicated binlog events applied on the hub, per member.", "member")
	mHubBatchSeconds = obs.Default.Histogram("xdmodfed_hub_apply_batch_seconds",
		"Latency of applying one replication batch on the hub.", nil)
	mMemberPosition = obs.Default.GaugeVec("xdmodfed_hub_member_position",
		"Last durably committed binlog LSN per member, as seen by the hub.", "member")
	mMemberQuarantined = obs.Default.GaugeVec("xdmodfed_hub_member_quarantined",
		"1 while the member is quarantined by the hub's circuit breaker, else 0.", "member")
	mQuarantines = obs.Default.CounterVec("xdmodfed_hub_member_quarantines_total",
		"Quarantine trips after repeated batch-apply failures, per member.", "member")
	mAggRuns = obs.Default.Counter("xdmodfed_aggregation_runs_total",
		"Completed aggregation runs (instance-local and federation-wide).")
	mAggSeconds = obs.Default.Histogram("xdmodfed_aggregation_run_seconds",
		"Duration of one full aggregation run across all realms.", nil)

	coreLog = obs.Logger("core")
)

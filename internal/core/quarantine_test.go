package core

import (
	"errors"
	"testing"
	"time"

	"xdmodfed/internal/config"
	"xdmodfed/internal/replicate"
	"xdmodfed/internal/warehouse"
)

// poisonEvent cannot apply: it inserts into a schema the hub never
// created, which DB.Apply rejects.
func poisonEvent(lsn uint64) warehouse.Event {
	return warehouse.Event{
		LSN: lsn, Kind: warehouse.EvInsert,
		Schema: "no_such_schema", Table: "no_such_table", Row: []any{int64(1)},
	}
}

// benignEvent applies cleanly: schema creation is idempotent.
func benignEvent(lsn uint64, instance string) warehouse.Event {
	return warehouse.Event{
		LSN: lsn, Kind: warehouse.EvCreateSchema,
		Schema: replicate.HubSchema(instance),
	}
}

func retryAfter(t *testing.T, err error) *replicate.RetryAfterError {
	t.Helper()
	var ra *replicate.RetryAfterError
	if !errors.As(err, &ra) {
		t.Fatalf("error = %v (%T), want *replicate.RetryAfterError", err, err)
	}
	return ra
}

// TestMemberQuarantineCircuitBreaker walks the breaker's whole life
// cycle with a fake clock: failures below the threshold do nothing,
// the threshold trips a quarantine whose refusals carry the remaining
// backoff, the quarantine expires into a half-open probe, a further
// failure re-trips with a doubled backoff, and one success resets
// everything — all without disturbing a healthy member.
func TestMemberQuarantineCircuitBreaker(t *testing.T) {
	cfg := hubCfg("hub")
	cfg.Replication = config.ReplicationConfig{
		QuarantineThreshold:  2,
		QuarantineBackoff:    "30s",
		QuarantineMaxBackoff: "2m",
	}
	hub, err := NewHub(cfg)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Date(2018, 6, 1, 12, 0, 0, 0, time.UTC)
	hub.now = func() time.Time { return now }
	for _, m := range []string{"bad", "good"} {
		if err := hub.Register(m); err != nil {
			t.Fatal(err)
		}
	}

	// First failure: counted, not yet quarantined.
	if err := hub.ApplyBatch("bad", 1, []warehouse.Event{poisonEvent(1)}); err == nil {
		t.Fatal("poison batch applied cleanly")
	}
	if err := hub.authorize("bad"); err != nil {
		t.Fatalf("one failure below threshold must not quarantine: %v", err)
	}

	// Second failure: breaker trips.
	if err := hub.ApplyBatch("bad", 1, []warehouse.Event{poisonEvent(1)}); err == nil {
		t.Fatal("poison batch applied cleanly")
	}
	ra := retryAfter(t, hub.authorize("bad"))
	if ra.After <= 0 || ra.After > 30*time.Second {
		t.Fatalf("retry-after = %v, want (0, 30s]", ra.After)
	}
	// Batches on an already-open connection are bounced the same way,
	// even valid ones: the member sits out its quarantine.
	ra = retryAfter(t, hub.ApplyBatch("bad", 2, []warehouse.Event{benignEvent(2, "bad")}))
	if ra.After <= 0 {
		t.Fatalf("in-stream retry-after = %v, want positive", ra.After)
	}

	// The breaker is per-member: a healthy member keeps replicating.
	if err := hub.ApplyBatch("good", 1, []warehouse.Event{benignEvent(1, "good")}); err != nil {
		t.Fatalf("healthy member rejected while another is quarantined: %v", err)
	}

	// Quarantine is visible in federation status.
	var bad, good *Member
	for _, m := range hub.Status().Members {
		m := m
		switch m.Name {
		case "bad":
			bad = &m
		case "good":
			good = &m
		}
	}
	if bad == nil || !bad.Quarantined(now) || bad.Quarantines != 1 || bad.LastError == "" {
		t.Fatalf("status for quarantined member = %+v", bad)
	}
	if good == nil || good.Quarantined(now) || good.Failures != 0 {
		t.Fatalf("status for healthy member = %+v", good)
	}

	// Expiry: the member may probe again (half-open)...
	now = now.Add(31 * time.Second)
	if err := hub.authorize("bad"); err != nil {
		t.Fatalf("expired quarantine still rejecting: %v", err)
	}
	// ...but a single further failure re-trips with a doubled backoff.
	if err := hub.ApplyBatch("bad", 2, []warehouse.Event{poisonEvent(2)}); err == nil {
		t.Fatal("poison batch applied cleanly")
	}
	ra = retryAfter(t, hub.authorize("bad"))
	if ra.After <= 30*time.Second || ra.After > 60*time.Second {
		t.Fatalf("re-trip retry-after = %v, want (30s, 60s] (doubled)", ra.After)
	}

	// One successful batch after expiry fully resets the breaker.
	now = now.Add(61 * time.Second)
	if err := hub.ApplyBatch("bad", 3, []warehouse.Event{benignEvent(3, "bad")}); err != nil {
		t.Fatalf("valid batch after expiry rejected: %v", err)
	}
	for _, m := range hub.Status().Members {
		if m.Name != "bad" {
			continue
		}
		if m.Failures != 0 || m.Quarantines != 0 || m.Quarantined(now) || m.LastError != "" {
			t.Fatalf("breaker not reset after success: %+v", m)
		}
	}
}

// TestQuarantineBackoffCap: consecutive re-trips double the backoff
// only up to the configured cap.
func TestQuarantineBackoffCap(t *testing.T) {
	cfg := hubCfg("hub")
	cfg.Replication = config.ReplicationConfig{
		QuarantineThreshold:  1,
		QuarantineBackoff:    "10s",
		QuarantineMaxBackoff: "25s",
	}
	hub, err := NewHub(cfg)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Date(2018, 6, 1, 0, 0, 0, 0, time.UTC)
	hub.now = func() time.Time { return now }
	if err := hub.Register("flappy"); err != nil {
		t.Fatal(err)
	}
	wantUpper := []time.Duration{10 * time.Second, 20 * time.Second, 25 * time.Second, 25 * time.Second}
	for i, want := range wantUpper {
		if err := hub.ApplyBatch("flappy", uint64(i+1), []warehouse.Event{poisonEvent(uint64(i + 1))}); err == nil {
			t.Fatal("poison batch applied cleanly")
		}
		ra := retryAfter(t, hub.authorize("flappy"))
		if ra.After != want {
			t.Fatalf("trip %d: backoff %v, want %v", i+1, ra.After, want)
		}
		now = now.Add(want + time.Second) // let it expire; next failure re-trips
	}
}

// TestQuarantineDisabled: a negative threshold turns the breaker off.
func TestQuarantineDisabled(t *testing.T) {
	cfg := hubCfg("hub")
	cfg.Replication = config.ReplicationConfig{QuarantineThreshold: -1}
	hub, err := NewHub(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := hub.Register("bad"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := hub.ApplyBatch("bad", uint64(i+1), []warehouse.Event{poisonEvent(uint64(i + 1))}); err == nil {
			t.Fatal("poison batch applied cleanly")
		}
	}
	if err := hub.authorize("bad"); err != nil {
		t.Fatalf("disabled breaker still quarantined: %v", err)
	}
}

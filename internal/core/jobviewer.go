package core

import (
	"fmt"
	"sort"
	"time"

	"xdmodfed/internal/realm/jobs"
	"xdmodfed/internal/realm/perf"
	"xdmodfed/internal/warehouse"
)

// The Job Viewer: "with XDMoD's Job Viewer, users can probe
// performance data about a job's executable, its accounting data, job
// scripts, application, and timeseries plots of metrics such as CPU
// user, flops, parallel file system usage, and memory usage" (paper
// §IV). JobDetail assembles that view from the Jobs realm (accounting)
// and the SUPReMM realm (summary, timeseries, script). The detailed
// parts exist only on the satellite that monitors the resource — the
// hub deliberately holds summaries only (§II-C5).

// JobAccounting is the Jobs-realm view of one job.
type JobAccounting struct {
	JobID    int64
	Resource string
	User     string
	PI       string
	Queue    string
	Nodes    int64
	Cores    int64
	Submit   time.Time
	Start    time.Time
	End      time.Time
	WallSec  float64
	WaitSec  float64
	CPUHours float64
	XDSU     float64
	Exit     string
}

// JobPerfPoint is one timeseries sample of the nine SUPReMM metrics.
type JobPerfPoint struct {
	OffsetSec float64
	Values    map[string]float64
}

// JobDetail is the Job Viewer document for one job.
type JobDetail struct {
	Accounting  JobAccounting
	HasPerf     bool
	AvgMetrics  map[string]float64 // SUPReMM summary averages
	PeakMetrics map[string]float64
	Timeseries  []JobPerfPoint // satellite-only detail
	Script      string         // satellite-only detail
}

// JobDetail looks up one job by (resource, local job id).
func (in *Instance) JobDetail(resource string, jobID int64) (*JobDetail, error) {
	factTab, err := in.DB.TableIn(jobs.SchemaName, jobs.FactTable)
	if err != nil {
		return nil, err
	}
	var detail *JobDetail
	err = in.DB.View(func() error {
		r, ok := factTab.GetByKey(resource, jobID)
		if !ok {
			return fmt.Errorf("core: no job %d on resource %q", jobID, resource)
		}
		getTime := func(col string) time.Time {
			if v, _ := r.Lookup(col); v != nil {
				return v.(time.Time)
			}
			return time.Time{}
		}
		detail = &JobDetail{Accounting: JobAccounting{
			JobID:    r.Int(jobs.ColJobID),
			Resource: r.String(jobs.ColResource),
			User:     r.String(jobs.ColUser),
			PI:       r.String(jobs.ColPI),
			Queue:    r.String(jobs.ColQueue),
			Nodes:    r.Int(jobs.ColNodes),
			Cores:    r.Int(jobs.ColCores),
			Submit:   getTime(jobs.ColSubmit),
			Start:    getTime(jobs.ColStart),
			End:      getTime(jobs.ColEnd),
			WallSec:  r.Float(jobs.ColWallSec),
			WaitSec:  r.Float(jobs.ColWaitSec),
			CPUHours: r.Float(jobs.ColCPUHours),
			XDSU:     r.Float(jobs.ColXDSU),
			Exit:     r.String(jobs.ColExit),
		}}
		return nil
	})
	if err != nil {
		return nil, err
	}

	// SUPReMM summary (present on satellites and, for replicated jobs,
	// on hubs too).
	if sumTab, err := in.DB.TableIn(perf.SchemaName, perf.SummaryTable); err == nil {
		in.DB.View(func() error {
			if r, ok := sumTab.GetByKey(resource, jobID); ok {
				detail.HasPerf = true
				detail.AvgMetrics = map[string]float64{}
				detail.PeakMetrics = map[string]float64{}
				for _, m := range perf.MetricNames {
					detail.AvgMetrics[m] = r.Float("avg_" + m)
					detail.PeakMetrics[m] = r.Float("peak_" + m)
				}
			}
			return nil
		})
	}

	// Detailed timeseries and script: satellite-only tables.
	if tsTab, err := in.DB.TableIn(perf.SchemaName, perf.TimeseriesTable); err == nil {
		in.DB.View(func() error {
			tsTab.ScanIndex([]string{"resource", "job_id"}, []any{resource, jobID}, func(r warehouse.Row) bool {
				pt := JobPerfPoint{OffsetSec: r.Float("offset_sec"), Values: map[string]float64{}}
				for _, m := range perf.MetricNames {
					pt.Values[m] = r.Float(m)
				}
				detail.Timeseries = append(detail.Timeseries, pt)
				return true
			})
			return nil
		})
	}
	sort.Slice(detail.Timeseries, func(i, j int) bool {
		return detail.Timeseries[i].OffsetSec < detail.Timeseries[j].OffsetSec
	})
	if scTab, err := in.DB.TableIn(perf.SchemaName, perf.ScriptTable); err == nil {
		in.DB.View(func() error {
			if r, ok := scTab.GetByKey(resource, jobID); ok {
				detail.Script = r.String("script")
			}
			return nil
		})
	}
	return detail, nil
}

package core

import (
	"testing"
	"time"

	"xdmodfed/internal/realm/jobs"
	"xdmodfed/internal/warehouse"
)

// TestStatusMemberFreshness exercises the Status() fields /healthz
// freshness is built on: per-member last-applied position and the wall
// time of the newest applied event.
func TestStatusMemberFreshness(t *testing.T) {
	hub, err := NewHub(hubCfg("fedhub"))
	if err != nil {
		t.Fatal(err)
	}
	if err := hub.Register("siteA"); err != nil {
		t.Fatal(err)
	}
	if err := hub.Register("siteB"); err != nil {
		t.Fatal(err)
	}

	st := hub.Status()
	if len(st.Members) != 2 {
		t.Fatalf("members = %d, want 2", len(st.Members))
	}
	for _, m := range st.Members {
		if m.Position != 0 || !m.LastEvent.IsZero() || !m.LastBatch.IsZero() {
			t.Errorf("member %s before any batch: Position=%d LastEvent=%v LastBatch=%v",
				m.Name, m.Position, m.LastEvent, m.LastBatch)
		}
	}

	// Apply a batch carrying an event with an origin timestamp.
	evTime := time.Date(2017, 6, 1, 12, 0, 0, 0, time.UTC)
	events := []warehouse.Event{
		{Kind: warehouse.EvCreateSchema, Schema: "fed_siteA", Time: evTime.Add(-time.Minute)},
		{Kind: warehouse.EvCreateTable, Schema: "fed_siteA", Table: "tt", Time: evTime,
			Def: &warehouse.TableDef{
				Name:    "tt",
				Columns: []warehouse.Column{{Name: "id", Type: warehouse.TypeInt}},
			}},
	}
	if err := hub.ApplyBatch("siteA", 42, events); err != nil {
		t.Fatal(err)
	}

	st = hub.Status()
	var a, b *Member
	for i := range st.Members {
		switch st.Members[i].Name {
		case "siteA":
			a = &st.Members[i]
		case "siteB":
			b = &st.Members[i]
		}
	}
	if a == nil || b == nil {
		t.Fatalf("members = %v", st.Members)
	}
	if a.Position != 42 {
		t.Errorf("siteA Position = %d, want 42", a.Position)
	}
	if !a.LastEvent.Equal(evTime) {
		t.Errorf("siteA LastEvent = %v, want the newest event's time %v", a.LastEvent, evTime)
	}
	if a.LastBatch.IsZero() {
		t.Error("siteA LastBatch not set after ApplyBatch")
	}
	if b.Position != 0 || !b.LastEvent.IsZero() {
		t.Errorf("siteB untouched member changed: Position=%d LastEvent=%v", b.Position, b.LastEvent)
	}
	// Dirtiness is per-realm: a DDL-only batch touches no realm fact
	// table, so no aggregates went stale and the hub stays clean.
	if st.Dirty {
		t.Errorf("hub dirty after DDL-only batch; dirty realms = %v", st.DirtyRealms)
	}

	// A non-additive mutation (truncate) on a realm fact table marks
	// exactly that realm for rebuild.
	jobsDef := jobs.Def()
	if err := hub.ApplyBatch("siteA", 45, []warehouse.Event{
		{Kind: warehouse.EvCreateTable, Schema: "fed_siteA", Table: jobs.FactTable, Def: &jobsDef, Time: evTime},
		{Kind: warehouse.EvTruncate, Schema: "fed_siteA", Table: jobs.FactTable, Time: evTime},
	}); err != nil {
		t.Fatal(err)
	}
	st = hub.Status()
	if !st.Dirty {
		t.Error("hub not marked dirty after fact-table truncate")
	}
	if len(st.DirtyRealms) != 1 || st.DirtyRealms[0] != "Jobs" {
		t.Errorf("dirty realms = %v, want [Jobs]", st.DirtyRealms)
	}

	// An empty keep-alive batch advances the position but not LastEvent.
	if err := hub.ApplyBatch("siteA", 50, nil); err != nil {
		t.Fatal(err)
	}
	st = hub.Status()
	for _, m := range st.Members {
		if m.Name != "siteA" {
			continue
		}
		if m.Position != 50 {
			t.Errorf("siteA Position after empty batch = %d, want 50", m.Position)
		}
		if !m.LastEvent.Equal(evTime) {
			t.Errorf("siteA LastEvent changed by empty batch: %v", m.LastEvent)
		}
	}
}

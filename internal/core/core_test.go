package core

import (
	"bytes"
	"context"
	"fmt"
	"testing"
	"time"

	"xdmodfed/internal/aggregate"
	"xdmodfed/internal/auth"
	"xdmodfed/internal/config"
	"xdmodfed/internal/realm/jobs"
	"xdmodfed/internal/shredder"
)

func satCfg(name string, resources []string, hubAddr string) config.InstanceConfig {
	cfg := config.InstanceConfig{
		Name:    name,
		Version: Version,
		AggregationLevels: []config.AggregationLevels{
			config.InstanceAWallTime(), config.DefaultJobSize(), config.CloudVMMemory(),
		},
	}
	for _, r := range resources {
		cfg.Resources = append(cfg.Resources, config.ResourceConfig{
			Name: r, Type: "hpc", Nodes: 10, CoresPerNode: 16, WallLimitH: 50, SUFactor: 1.0,
		})
	}
	if hubAddr != "" {
		cfg.Hubs = []config.HubRoute{{HubAddr: hubAddr, Mode: "tight"}}
	}
	return cfg
}

func hubCfg(name string) config.InstanceConfig {
	return config.InstanceConfig{
		Name:    name,
		Version: Version,
		AggregationLevels: []config.AggregationLevels{
			config.HubWallTime(), config.DefaultJobSize(), config.CloudVMMemory(),
		},
	}
}

// ingestJobs loads n jobs onto a satellite for the given resource with
// the given wall time.
func ingestJobs(t testing.TB, s *Satellite, resource string, n int, wall time.Duration, startID int64) {
	t.Helper()
	var recs []shredder.JobRecord
	base := time.Date(2017, 3, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < n; i++ {
		end := base.Add(time.Duration(i) * 2 * time.Hour).Add(wall)
		recs = append(recs, shredder.JobRecord{
			LocalJobID: startID + int64(i), User: fmt.Sprintf("user%d", i%4), Account: "acct",
			Resource: resource, Queue: "batch", Nodes: 1, Cores: 8,
			Submit: end.Add(-wall - 30*time.Minute),
			Start:  end.Add(-wall),
			End:    end,
		})
	}
	st, err := s.Pipeline.IngestJobRecords(recs)
	if err != nil {
		t.Fatal(err)
	}
	if st.Ingested != n {
		t.Fatalf("ingested %d of %d: %v", st.Ingested, n, st.Errors)
	}
}

func waitFor(t testing.TB, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("condition not reached within deadline")
}

// TestFanInTopology reproduces Figure 2: satellites X, Y, Z monitoring
// resources L, M, N federate into one hub, whose unified view equals
// the union of the satellites' data.
func TestFanInTopology(t *testing.T) {
	hub, err := NewHub(hubCfg("fedhub"))
	if err != nil {
		t.Fatal(err)
	}
	addr, err := hub.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	counts := map[string]int{"X": 30, "Y": 20, "Z": 10}
	resources := map[string]string{"X": "L", "Y": "M", "Z": "N"}
	for _, name := range []string{"X", "Y", "Z"} {
		if err := hub.Register(name); err != nil {
			t.Fatal(err)
		}
		sat, err := NewSatellite(satCfg(name, []string{resources[name]}, addr))
		if err != nil {
			t.Fatal(err)
		}
		ingestJobs(t, sat, resources[name], counts[name], time.Hour, 1)
		if err := sat.StartFederation(ctx); err != nil {
			t.Fatal(err)
		}
		defer sat.StopFederation()
	}

	waitFor(t, func() bool {
		total := 0
		for _, name := range []string{"X", "Y", "Z"} {
			total += hub.DB.Count("fed_"+name, jobs.FactTable)
		}
		return total == 60
	})

	series, err := hub.Query("Jobs", aggregate.Request{
		MetricID: jobs.MetricNumJobs, GroupBy: jobs.DimResource, Period: aggregate.Year,
	})
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]float64{}
	for _, s := range series {
		got[s.Group] = s.Aggregate
	}
	if got["L"] != 30 || got["M"] != 20 || got["N"] != 10 {
		t.Errorf("federated view = %v", got)
	}

	st := hub.Status()
	if len(st.Members) != 3 || st.Members[0].Events == 0 {
		t.Errorf("status = %+v", st)
	}
}

// TestSelectiveRouting reproduces Figure 3's filtering note (§II-C4):
// resources B and D are excluded from federation; A and C replicate.
func TestSelectiveRouting(t *testing.T) {
	hub, err := NewHub(hubCfg("fedhub"))
	if err != nil {
		t.Fatal(err)
	}
	addr, err := hub.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	hub.Register("siteX")
	hub.Register("siteY")

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	cfgX := satCfg("siteX", []string{"A", "B"}, addr)
	cfgX.Hubs[0].ExcludeResources = []string{"B"} // B holds sensitive data
	satX, err := NewSatellite(cfgX)
	if err != nil {
		t.Fatal(err)
	}
	ingestJobs(t, satX, "A", 15, time.Hour, 1)
	ingestJobs(t, satX, "B", 9, time.Hour, 100)

	cfgY := satCfg("siteY", []string{"C", "D"}, addr)
	cfgY.Hubs[0].ExcludeResources = []string{"D"}
	satY, err := NewSatellite(cfgY)
	if err != nil {
		t.Fatal(err)
	}
	ingestJobs(t, satY, "C", 12, time.Hour, 1)
	ingestJobs(t, satY, "D", 7, time.Hour, 100)

	for _, s := range []*Satellite{satX, satY} {
		if err := s.StartFederation(ctx); err != nil {
			t.Fatal(err)
		}
		defer s.StopFederation()
	}

	waitFor(t, func() bool {
		return hub.DB.Count("fed_siteX", jobs.FactTable) == 15 &&
			hub.DB.Count("fed_siteY", jobs.FactTable) == 12
	})

	series, err := hub.Query("Jobs", aggregate.Request{
		MetricID: jobs.MetricNumJobs, GroupBy: jobs.DimResource, Period: aggregate.Year,
	})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, s := range series {
		seen[s.Group] = true
	}
	if !seen["A"] || !seen["C"] || seen["B"] || seen["D"] {
		t.Errorf("hub sees %v; sensitive resources must never arrive", seen)
	}

	// Satellites keep full local visibility of their excluded resources.
	local, err := satX.Query("Jobs", aggregate.Request{
		MetricID: jobs.MetricNumJobs, GroupBy: jobs.DimResource, Period: aggregate.Year,
	})
	if err != nil {
		t.Fatal(err)
	}
	localSeen := map[string]float64{}
	for _, s := range local {
		localSeen[s.Group] = s.Aggregate
	}
	if localSeen["B"] != 9 {
		t.Errorf("satellite lost local visibility of B: %v", localSeen)
	}
}

// TestTableIAggregationLevels reproduces Table I end to end: instances
// A and B aggregate the same kinds of jobs under different local
// levels, while the hub re-aggregates the union under its own levels.
func TestTableIAggregationLevels(t *testing.T) {
	hub, err := NewHub(hubCfg("hub"))
	if err != nil {
		t.Fatal(err)
	}
	addr, err := hub.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	hub.Register("instanceA")
	hub.Register("instanceB")

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// Instance A: 5-hour wall limit, fine-grained levels.
	cfgA := satCfg("instanceA", []string{"short-cluster"}, addr)
	cfgA.AggregationLevels[0] = config.InstanceAWallTime()
	satA, err := NewSatellite(cfgA)
	if err != nil {
		t.Fatal(err)
	}
	ingestJobs(t, satA, "short-cluster", 5, 30*time.Second, 1)
	ingestJobs(t, satA, "short-cluster", 7, 30*time.Minute, 100)
	ingestJobs(t, satA, "short-cluster", 3, 4*time.Hour, 200)

	// Instance B: 50-hour wall limit, coarse levels.
	cfgB := satCfg("instanceB", []string{"long-cluster"}, addr)
	cfgB.AggregationLevels[0] = config.InstanceBWallTime()
	satB, err := NewSatellite(cfgB)
	if err != nil {
		t.Fatal(err)
	}
	ingestJobs(t, satB, "long-cluster", 4, 8*time.Hour, 1)
	ingestJobs(t, satB, "long-cluster", 6, 15*time.Hour, 100)
	ingestJobs(t, satB, "long-cluster", 2, 40*time.Hour, 200)

	for _, s := range []*Satellite{satA, satB} {
		if err := s.StartFederation(ctx); err != nil {
			t.Fatal(err)
		}
		defer s.StopFederation()
	}
	waitFor(t, func() bool {
		return hub.DB.Count("fed_instanceA", jobs.FactTable) == 15 &&
			hub.DB.Count("fed_instanceB", jobs.FactTable) == 12
	})

	byBucket := func(series []aggregate.Series) map[string]float64 {
		out := map[string]float64{}
		for _, s := range series {
			out[s.Group] = s.Aggregate
		}
		return out
	}

	// Instance A groups its jobs by its own fine-grained levels.
	sa, err := satA.Query("Jobs", aggregate.Request{MetricID: jobs.MetricNumJobs, GroupBy: jobs.DimWallTime, Period: aggregate.Year})
	if err != nil {
		t.Fatal(err)
	}
	ga := byBucket(sa)
	if ga["1-60 seconds"] != 5 || ga["1-60 minutes"] != 7 || ga["1-5 hours"] != 3 {
		t.Errorf("instance A buckets = %v", ga)
	}

	// Instance B groups by its coarse levels.
	sb, err := satB.Query("Jobs", aggregate.Request{MetricID: jobs.MetricNumJobs, GroupBy: jobs.DimWallTime, Period: aggregate.Year})
	if err != nil {
		t.Fatal(err)
	}
	gb := byBucket(sb)
	if gb["1-10 hours"] != 4 || gb["10-20 hours"] != 6 || gb["20-50 hours"] != 2 {
		t.Errorf("instance B buckets = %v", gb)
	}

	// The hub re-aggregates ALL raw federation data under hub levels.
	sh, err := hub.Query("Jobs", aggregate.Request{MetricID: jobs.MetricNumJobs, GroupBy: jobs.DimWallTime, Period: aggregate.Year})
	if err != nil {
		t.Fatal(err)
	}
	gh := byBucket(sh)
	want := map[string]float64{
		"0-60 minutes": 12, // A's seconds + minutes jobs
		"1-5 hours":    3,
		"5-10 hours":   4,
		"10-20 hours":  6,
		"20-50 hours":  2,
	}
	for bucket, n := range want {
		if gh[bucket] != n {
			t.Errorf("hub bucket %q = %g, want %g (full map %v)", bucket, gh[bucket], n, gh)
		}
	}
}

// TestLooseFederationMixed: one member replicates tightly, another
// ships dumps — the paper's heterogeneous model (§II-C2).
func TestLooseFederationMixed(t *testing.T) {
	hub, err := NewHub(hubCfg("hub"))
	if err != nil {
		t.Fatal(err)
	}
	addr, err := hub.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	hub.Register("tightsite")
	hub.Register("loosesite")

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	tight, err := NewSatellite(satCfg("tightsite", []string{"tr"}, addr))
	if err != nil {
		t.Fatal(err)
	}
	ingestJobs(t, tight, "tr", 8, time.Hour, 1)
	tight.StartFederation(ctx)
	defer tight.StopFederation()

	looseCfg := satCfg("loosesite", []string{"lr"}, "")
	looseCfg.Hubs = []config.HubRoute{{HubAddr: "offline", Mode: "loose"}}
	loose, err := NewSatellite(looseCfg)
	if err != nil {
		t.Fatal(err)
	}
	ingestJobs(t, loose, "lr", 5, time.Hour, 1)
	var dump bytes.Buffer
	if err := loose.DumpForRoute(looseCfg.Hubs[0], &dump); err != nil {
		t.Fatal(err)
	}
	if err := hub.LoadLooseDump("loosesite", &dump); err != nil {
		t.Fatal(err)
	}

	waitFor(t, func() bool { return hub.DB.Count("fed_tightsite", jobs.FactTable) == 8 })

	series, err := hub.Query("Jobs", aggregate.Request{MetricID: jobs.MetricNumJobs, Period: aggregate.Year})
	if err != nil {
		t.Fatal(err)
	}
	if series[0].Aggregate != 13 {
		t.Errorf("federated total = %g, want 13", series[0].Aggregate)
	}

	// Loose dumps from unregistered instances are rejected.
	if err := hub.LoadLooseDump("rogue", bytes.NewReader(nil)); err == nil {
		t.Error("unregistered loose member accepted")
	}
}

func TestUnregisteredSatelliteRejected(t *testing.T) {
	hub, err := NewHub(hubCfg("hub"))
	if err != nil {
		t.Fatal(err)
	}
	addr, err := hub.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()

	sat, err := NewSatellite(satCfg("rogue", []string{"r"}, addr))
	if err != nil {
		t.Fatal(err)
	}
	ingestJobs(t, sat, "r", 1, time.Hour, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	sat.StartFederation(ctx)
	defer sat.StopFederation()
	time.Sleep(100 * time.Millisecond)
	if hub.DB.Schema("fed_rogue") != nil {
		t.Error("unregistered instance replicated data")
	}
}

func TestBackupRegeneration(t *testing.T) {
	hub, err := NewHub(hubCfg("hub"))
	if err != nil {
		t.Fatal(err)
	}
	addr, err := hub.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	hub.Register("site")

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sat, err := NewSatellite(satCfg("site", []string{"r"}, addr))
	if err != nil {
		t.Fatal(err)
	}
	ingestJobs(t, sat, "r", 25, time.Hour, 1)
	sat.StartFederation(ctx)
	waitFor(t, func() bool { return hub.DB.Count("fed_site", jobs.FactTable) == 25 })
	sat.StopFederation()

	// Disaster: the satellite loses its warehouse. Regenerate from hub.
	var backup bytes.Buffer
	if err := hub.RegenerateSatellite("site", &backup); err != nil {
		t.Fatal(err)
	}
	fresh, err := NewSatellite(satCfg("site", []string{"r"}, ""))
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.RestoreFromHubBackup(&backup); err != nil {
		t.Fatal(err)
	}
	if got := fresh.DB.Count(jobs.SchemaName, jobs.FactTable); got != 25 {
		t.Errorf("regenerated facts = %d, want 25", got)
	}
	series, err := fresh.Query("Jobs", aggregate.Request{MetricID: jobs.MetricNumJobs, Period: aggregate.Year})
	if err != nil {
		t.Fatal(err)
	}
	if series[0].Aggregate != 25 {
		t.Errorf("regenerated aggregate = %g", series[0].Aggregate)
	}

	if err := hub.RegenerateSatellite("ghost", &backup); err == nil {
		t.Error("regenerating unknown instance should fail")
	}
}

func TestIdentityObservation(t *testing.T) {
	hub, err := NewHub(hubCfg("hub"))
	if err != nil {
		t.Fatal(err)
	}
	addr, err := hub.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	hub.Register("s1")
	hub.Register("s2")

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for _, name := range []string{"s1", "s2"} {
		sat, err := NewSatellite(satCfg(name, []string{name + "-r"}, addr))
		if err != nil {
			t.Fatal(err)
		}
		ingestJobs(t, sat, name+"-r", 4, time.Hour, 1)
		sat.StartFederation(ctx)
		defer sat.StopFederation()
	}
	waitFor(t, func() bool {
		return hub.DB.Count("fed_s1", jobs.FactTable) == 4 && hub.DB.Count("fed_s2", jobs.FactTable) == 4
	})
	// user0 exists on both instances; without email evidence they stay
	// distinct persons (the paper's §II-D4 duplicate case)...
	id1, ok1 := hub.Identity.Resolve(auth.InstanceUser{Instance: "s1", Username: "user0"})
	id2, ok2 := hub.Identity.Resolve(auth.InstanceUser{Instance: "s2", Username: "user0"})
	if !ok1 || !ok2 {
		t.Fatal("identities not observed from replicated facts")
	}
	if id1 == id2 {
		t.Error("cross-instance accounts merged without evidence")
	}
	// ...until the hub admin links them.
	if err := hub.Identity.Link(
		auth.InstanceUser{Instance: "s1", Username: "user0"},
		auth.InstanceUser{Instance: "s2", Username: "user0"},
	); err != nil {
		t.Fatal(err)
	}
	accts := hub.Identity.AccountsOf(auth.InstanceUser{Instance: "s1", Username: "user0"})
	if len(accts) != 2 {
		t.Errorf("linked accounts = %v", accts)
	}
}

func TestInstanceValidation(t *testing.T) {
	if _, err := NewInstance(config.InstanceConfig{}); err == nil {
		t.Error("invalid config accepted")
	}
	if _, err := NewSatellite(config.InstanceConfig{Name: "x", Version: "1",
		Resources: []config.ResourceConfig{{Name: "r", Type: "warp-drive"}}}); err == nil {
		t.Error("bad resource type accepted")
	}
}

func TestRewriterForUnknownRealm(t *testing.T) {
	sat, err := NewSatellite(satCfg("s", []string{"r"}, ""))
	if err != nil {
		t.Fatal(err)
	}
	_, err = sat.rewriterFor(config.HubRoute{HubAddr: "h", Mode: "tight", IncludeRealms: []string{"Quantum"}})
	if err == nil {
		t.Error("unknown realm accepted in route")
	}
}

func TestHubRegisterValidation(t *testing.T) {
	hub, _ := NewHub(hubCfg("hub"))
	if err := hub.Register(""); err == nil {
		t.Error("empty member accepted")
	}
	if err := hub.Register("a"); err != nil {
		t.Fatal(err)
	}
	if err := hub.Register("a"); err == nil {
		t.Error("duplicate member accepted")
	}
}

func TestQueryUnknownRealm(t *testing.T) {
	sat, _ := NewSatellite(satCfg("s", []string{"r"}, ""))
	if _, err := sat.Query("Nope", aggregate.Request{}); err == nil {
		t.Error("unknown realm accepted")
	}
}

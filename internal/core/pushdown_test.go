package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"xdmodfed/internal/aggregate"
	"xdmodfed/internal/config"
	"xdmodfed/internal/realm"
	"xdmodfed/internal/realm/jobs"
	"xdmodfed/internal/replicate"
	"xdmodfed/internal/warehouse"
)

// pushSatCfg is a satellite config in pushdown mode. Its aggregation
// levels match the hub's (satCfg's instance-local levels would be
// soft-declined on the digest check).
func pushSatCfg(name string, resources []string, hubAddr string) config.InstanceConfig {
	cfg := satCfg(name, resources, hubAddr)
	cfg.AggregationLevels = []config.AggregationLevels{
		config.HubWallTime(), config.DefaultJobSize(), config.CloudVMMemory(),
	}
	cfg.Replication.Mode = "pushdown"
	cfg.Replication.PushdownFlushInterval = "20ms"
	return cfg
}

// hubShardSnapshot renders every aggregation-table row of one realm
// across all shards as a sorted string list (shard-aware counterpart
// of hubAggSnapshot).
func hubShardSnapshot(t *testing.T, hub *Hub, realmName string) []string {
	t.Helper()
	info, ok := hub.Registry.Get(realmName)
	if !ok {
		t.Fatalf("no realm %q", realmName)
	}
	var out []string
	hub.DB.View(func() error {
		for _, schema := range hub.Engine.AggSchemas(info) {
			for _, p := range aggregate.Periods() {
				tab, err := hub.DB.TableIn(schema, aggregate.AggTableName(info.FactTable, p))
				if err != nil {
					t.Fatal(err)
				}
				cols := tab.Columns()
				tab.Scan(func(r warehouse.Row) bool {
					var b strings.Builder
					b.WriteString(p.String())
					for _, c := range cols {
						fmt.Fprintf(&b, "|%s=%v", c, r.Get(c))
					}
					out = append(out, b.String())
					return true
				})
			}
		}
		return nil
	})
	sort.Strings(out)
	return out
}

// chartBits runs a set of chart queries and renders every series
// bit-exactly (Float64bits) for cross-hub comparison.
func chartBits(t *testing.T, hub *Hub) []string {
	t.Helper()
	reqs := []aggregate.Request{
		{MetricID: jobs.MetricCPUHours, GroupBy: jobs.DimResource, Period: aggregate.Month},
		{MetricID: jobs.MetricNumJobs, GroupBy: jobs.DimUser, Period: aggregate.Quarter},
		{MetricID: jobs.MetricAvgWaitHours, GroupBy: jobs.DimResource, Period: aggregate.Year},
		{MetricID: jobs.MetricCPUHours, Period: aggregate.Day},
	}
	var out []string
	for qi, req := range reqs {
		series, err := hub.Query("Jobs", req)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range series {
			line := fmt.Sprintf("q%d|%s|%016x", qi, s.Group, math.Float64bits(s.Aggregate))
			for _, p := range s.Points {
				line += fmt.Sprintf("|%d:%016x", p.PeriodKey, math.Float64bits(p.Value))
			}
			out = append(out, line)
		}
	}
	return out
}

// TestMixedFederationPushdownMatchesFactControl is the federation-level
// equivalence property: a hub serving one pushdown satellite, one
// fact-mode satellite and one loose-dump member must produce charts
// and aggregation tables bit-identical to a control hub where every
// member replicates raw facts — across an initial load, an incremental
// wave, and with chart queries racing replication, sharded 3-way by
// resource. Run under -race via `make race`.
func TestMixedFederationPushdownMatchesFactControl(t *testing.T) {
	type fed struct {
		hub  *Hub
		sats map[string]*Satellite
		stop []func()
	}
	build := func(ctx context.Context, label string, pushdownP bool) *fed {
		cfg := hubCfg("fedhub")
		cfg.Sharding = config.ShardingConfig{Shards: 3, Key: config.ShardKeyResource}
		hub, err := NewHub(cfg)
		if err != nil {
			t.Fatal(err)
		}
		addr, err := hub.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		f := &fed{hub: hub, sats: map[string]*Satellite{}, stop: []func(){hub.Close}}
		for _, name := range []string{"P", "F", "L"} {
			if err := hub.Register(name); err != nil {
				t.Fatal(err)
			}
		}
		// P pushes down (on the pushdown side), F always replicates
		// facts, L ships a loose dump.
		pCfg := satCfg("P", []string{"pres"}, addr)
		if pushdownP {
			pCfg = pushSatCfg("P", []string{"pres"}, addr)
		}
		p, err := NewSatellite(pCfg)
		if err != nil {
			t.Fatal(err)
		}
		fSat, err := NewSatellite(satCfg("F", []string{"fres"}, addr))
		if err != nil {
			t.Fatal(err)
		}
		f.sats["P"], f.sats["F"] = p, fSat
		ingestJobs(t, p, "pres", 40, 90*time.Minute, 1)
		ingestJobs(t, fSat, "fres", 25, 2*time.Hour, 1)
		for _, s := range []*Satellite{p, fSat} {
			if err := s.StartFederation(ctx); err != nil {
				t.Fatal(err)
			}
			s := s
			f.stop = append(f.stop, s.StopFederation)
		}
		looseCfg := satCfg("L", []string{"lres"}, "")
		looseCfg.Hubs = []config.HubRoute{{HubAddr: "offline", Mode: "loose"}}
		loose, err := NewSatellite(looseCfg)
		if err != nil {
			t.Fatal(err)
		}
		ingestJobs(t, loose, "lres", 12, time.Hour, 1)
		var dump bytes.Buffer
		if err := loose.DumpForRoute(looseCfg.Hubs[0], &dump); err != nil {
			t.Fatal(err)
		}
		if err := hub.LoadLooseDump("L", &dump); err != nil {
			t.Fatal(err)
		}
		return f
	}

	converged := func(f *fed, pushdownP bool) bool {
		members := map[string]Member{}
		for _, m := range f.hub.Members() {
			members[m.Name] = m
		}
		pHead := f.sats["P"].DB.Binlog().Last()
		fHead := f.sats["F"].DB.Binlog().Last()
		p, fm := members["P"], members["F"]
		if fm.Position != fHead {
			return false
		}
		if pushdownP {
			return p.Mode == "pushdown" && p.Position == pHead && p.DeltaCovered == pHead
		}
		return p.Position == pHead
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	push := build(ctx, "push", true)
	ctrl := build(ctx, "ctrl", false)
	defer func() {
		for _, f := range []*fed{push, ctrl} {
			for i := len(f.stop) - 1; i >= 0; i-- {
				f.stop[i]()
			}
		}
	}()

	// Chart queries race replication on both hubs throughout.
	raceCtx, raceCancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for _, h := range []*Hub{push.hub, ctrl.hub} {
		h := h
		wg.Add(1)
		go func() {
			defer wg.Done()
			for raceCtx.Err() == nil {
				h.Query("Jobs", aggregate.Request{
					MetricID: jobs.MetricCPUHours, GroupBy: jobs.DimResource, Period: aggregate.Month,
				})
			}
		}()
	}

	waitFor(t, func() bool { return converged(push, true) && converged(ctrl, false) })

	compare := func(stage string) {
		t.Helper()
		for _, f := range []*fed{push, ctrl} {
			if err := f.hub.EnsureAggregated(); err != nil {
				t.Fatal(err)
			}
		}
		gotTables := hubShardSnapshot(t, push.hub, "Jobs")
		wantTables := hubShardSnapshot(t, ctrl.hub, "Jobs")
		if len(wantTables) == 0 {
			t.Fatalf("%s: control hub has no aggregates", stage)
		}
		if strings.Join(gotTables, "\n") != strings.Join(wantTables, "\n") {
			t.Fatalf("%s: aggregation tables differ (%d vs %d rows)", stage, len(gotTables), len(wantTables))
		}
		gotCharts := chartBits(t, push.hub)
		wantCharts := chartBits(t, ctrl.hub)
		if strings.Join(gotCharts, "\n") != strings.Join(wantCharts, "\n") {
			t.Fatalf("%s: charts differ:\n pushdown: %v\n control:  %v", stage, gotCharts, wantCharts)
		}
	}
	compare("initial")

	// The pushdown hub must hold the member's partials, not its raw
	// facts; the control hub holds raw facts.
	if got := push.hub.DB.Count("fed_P", jobs.FactTable); got != 0 {
		t.Errorf("pushdown hub materialized %d raw fact rows for member P", got)
	}
	if got := ctrl.hub.DB.Count("fed_P", jobs.FactTable); got != 40 {
		t.Errorf("control hub has %d fact rows for member P, want 40", got)
	}
	modes := map[string]string{}
	for _, m := range push.hub.Members() {
		modes[m.Name] = m.Mode
	}
	if modes["P"] != "pushdown" || modes["F"] != "facts" || modes["L"] != "loose" {
		t.Errorf("member modes = %v", modes)
	}

	// Incremental wave: new facts on both satellites exercise the
	// delta upsert path against live incremental fact folding.
	for _, f := range []*fed{push, ctrl} {
		ingestJobs(t, f.sats["P"], "pres", 15, 45*time.Minute, 1000)
		ingestJobs(t, f.sats["F"], "fres", 10, 3*time.Hour, 1000)
	}
	waitFor(t, func() bool { return converged(push, true) && converged(ctrl, false) })
	compare("incremental")

	raceCancel()
	wg.Wait()
}

// TestPushdownModeSwitchGuard: once a member has pushed down partial
// aggregates, reconnecting in facts mode (or with a realm dropped from
// the grant) must be rejected hard — the hub holds partials, not facts,
// so silently resuming fact replication would double-count or serve
// holes. A wrong levels digest stays a soft decline.
func TestPushdownModeSwitchGuard(t *testing.T) {
	hub, err := NewHub(hubCfg("h"))
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	if err := hub.Register("s"); err != nil {
		t.Fatal(err)
	}
	digest := hub.Engine.LevelsDigest()

	// Digest mismatch: soft decline, connection proceeds in facts mode.
	err = hub.NegotiatePushdown("s", replicate.PushdownRequest{
		Enabled: true, Realms: []string{"Jobs"}, LevelsDigest: "bogus",
	})
	if !errors.Is(err, replicate.ErrPushdownDeclined) {
		t.Fatalf("digest mismatch: got %v, want soft decline", err)
	}

	// Matching offer: granted.
	if err := hub.NegotiatePushdown("s", replicate.PushdownRequest{
		Enabled: true, Realms: []string{"Jobs"}, LevelsDigest: digest,
	}); err != nil {
		t.Fatalf("grant failed: %v", err)
	}

	// Push one real delta so the member has pagg residue.
	sat, err := NewSatellite(pushSatCfg("s", []string{"r"}, ""))
	if err != nil {
		t.Fatal(err)
	}
	ingestJobs(t, sat, "r", 5, time.Hour, 1)
	info, _ := sat.Registry.Get("Jobs")
	df, err := sat.Engine.NewDeltaFolder(info)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := df.Reset(nil, "resource"); err != nil {
		t.Fatal(err)
	}
	d, ok := df.Flush()
	if !ok {
		t.Fatal("no delta")
	}
	if err := hub.ApplyDeltas(context.Background(), "s", d.CoveredLSN, []aggregate.Delta{d}); err != nil {
		t.Fatal(err)
	}

	// Facts-mode reconnect over residue: hard reject, not a decline.
	err = hub.NegotiatePushdown("s", replicate.PushdownRequest{Enabled: false})
	if err == nil || errors.Is(err, replicate.ErrPushdownDeclined) {
		t.Fatalf("facts reconnect over residue: got %v, want hard reject", err)
	}
	// Dropping the realm from the grant is the same hazard.
	err = hub.NegotiatePushdown("s", replicate.PushdownRequest{
		Enabled: true, Realms: []string{"Storage"}, LevelsDigest: digest,
	})
	if err == nil || errors.Is(err, replicate.ErrPushdownDeclined) {
		t.Fatalf("realm dropped from grant over residue: got %v, want hard reject", err)
	}
	// Re-offering the same grant stays fine.
	if err := hub.NegotiatePushdown("s", replicate.PushdownRequest{
		Enabled: true, Realms: []string{"Jobs"}, LevelsDigest: digest,
	}); err != nil {
		t.Fatalf("re-grant failed: %v", err)
	}
	// Deltas for a realm outside the grant are rejected.
	if err := hub.ApplyDeltas(context.Background(), "s", 1,
		[]aggregate.Delta{{Realm: "Storage"}}); err == nil {
		t.Fatal("delta outside the grant was applied")
	}
}

// TestPushdownSkipsUnmergeableRealm: a realm whose metrics the delta
// fold cannot merge must fall back to raw fact replication with a
// warning — never a silently-wrong merge. A route with no mergeable
// realm disables pushdown entirely (nil folder, facts mode).
func TestPushdownSkipsUnmergeableRealm(t *testing.T) {
	sat, err := NewSatellite(pushSatCfg("s", []string{"r"}, ""))
	if err != nil {
		t.Fatal(err)
	}
	// Rebuild the registry with the Storage realm carrying a metric
	// function the delta fold has no merge rule for.
	reg := realm.NewRegistry()
	for _, name := range sat.Registry.Names() {
		info, _ := sat.Registry.Get(name)
		if name == "Storage" {
			info.Metrics = append([]realm.Metric(nil), info.Metrics...)
			info.Metrics[0].Func = warehouse.AggFunc(99)
		}
		if err := reg.Register(info); err != nil {
			t.Fatal(err)
		}
	}
	sat.Registry = reg

	route := config.HubRoute{HubAddr: "x", Mode: "tight", IncludeRealms: []string{"Jobs", "Storage"}}
	pf, err := sat.pushdownFolderFor(route, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if pf == nil {
		t.Fatal("mergeable Jobs realm should still push down")
	}
	if realms := pf.Realms(); len(realms) != 1 || realms[0] != "Jobs" {
		t.Errorf("pushed-down realms = %v, want [Jobs] (unmergeable Storage must fall back to facts)", realms)
	}

	onlyWeird := config.HubRoute{HubAddr: "x", Mode: "tight", IncludeRealms: []string{"Storage"}}
	pf, err = sat.pushdownFolderFor(onlyWeird, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if pf != nil {
		t.Error("route with no mergeable realm must disable pushdown, not merge wrong")
	}
}

package core

import (
	"context"
	"testing"
	"time"

	"xdmodfed/internal/aggregate"
	"xdmodfed/internal/realm/jobs"
)

func TestRunDailyAggregation(t *testing.T) {
	sat, err := NewSatellite(satCfg("s", []string{"r"}, ""))
	if err != nil {
		t.Fatal(err)
	}
	// Bypass the pipeline's incremental aggregation: write a fact
	// directly, as replication or a bulk restore would.
	row := map[string]any{
		jobs.ColJobID: int64(1), jobs.ColResource: "r", jobs.ColUser: "u",
		jobs.ColPI: "p", jobs.ColQueue: "q", jobs.ColNodes: int64(1), jobs.ColCores: int64(4),
		jobs.ColSubmit:  time.Date(2017, 5, 1, 0, 0, 0, 0, time.UTC),
		jobs.ColStart:   time.Date(2017, 5, 1, 1, 0, 0, 0, time.UTC),
		jobs.ColEnd:     time.Date(2017, 5, 1, 2, 0, 0, 0, time.UTC),
		jobs.ColWallSec: 3600.0, jobs.ColWaitSec: 3600.0, jobs.ColCPUHours: 4.0,
		jobs.ColXDSU: 4.0, jobs.ColDayKey: int64(20170501), jobs.ColMonthKey: int64(201705),
	}
	if err := sat.DB.Insert(jobs.SchemaName, jobs.FactTable, row); err != nil {
		t.Fatal(err)
	}
	// Before the scheduled run the aggregates don't see it.
	series, _ := sat.Query("Jobs", aggregate.Request{MetricID: jobs.MetricNumJobs, Period: aggregate.Year})
	if len(series) != 0 {
		t.Fatalf("aggregates populated early: %+v", series)
	}

	ctx, cancel := context.WithCancel(context.Background())
	runsC := make(chan int, 1)
	go func() {
		n, err := sat.Instance.RunDailyAggregation(ctx, 2*time.Millisecond)
		if err != nil {
			t.Error(err)
		}
		runsC <- n
	}()
	deadline := time.Now().Add(10 * time.Second)
	for {
		series, _ = sat.Query("Jobs", aggregate.Request{MetricID: jobs.MetricNumJobs, Period: aggregate.Year})
		if len(series) == 1 && series[0].Aggregate == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("scheduled aggregation never ran")
		}
		time.Sleep(2 * time.Millisecond)
	}
	cancel()
	if n := <-runsC; n < 1 {
		t.Errorf("runs = %d", n)
	}

	if _, err := sat.Instance.RunDailyAggregation(context.Background(), 0); err == nil {
		t.Error("zero interval accepted")
	}
}

package core

import (
	"context"
	"testing"
	"time"

	"xdmodfed/internal/aggregate"
	"xdmodfed/internal/config"
	"xdmodfed/internal/realm/cloud"
	"xdmodfed/internal/realm/perf"
	"xdmodfed/internal/realm/storage"
	"xdmodfed/internal/workload"
)

// TestMultiRealmFederation exercises the full heterogeneous-resources
// story of paper §III: one satellite monitors HPC, cloud and storage
// resources and profiles jobs with SUPReMM; a route federating all
// four realms fans everything into the hub — except the SUPReMM
// detail tables, which must remain satellite-only (§II-C5).
func TestMultiRealmFederation(t *testing.T) {
	hub, err := NewHub(hubCfg("hub"))
	if err != nil {
		t.Fatal(err)
	}
	addr, err := hub.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	hub.Register("center")

	cfg := satCfg("center", []string{"cluster"}, addr)
	cfg.Resources = append(cfg.Resources,
		config.ResourceConfig{Name: "research-cloud", Type: "cloud"},
		config.ResourceConfig{Name: "isilon", Type: "storage"},
	)
	cfg.Hubs[0].IncludeRealms = []string{"Jobs", "Cloud", "Storage", "SUPReMM"}
	sat, err := NewSatellite(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// HPC jobs + SUPReMM profiles.
	ingestJobs(t, sat, "cluster", 20, time.Hour, 1)
	recs := workload.GenerateJobs(workload.ResourceModel{
		Name: "cluster", CoresPerNode: 8, MaxNodes: 4, SUFactor: 1,
		MonthlyWeight: [12]float64{1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1},
		MeanWallHours: 1, QueueNames: []string{"q"}, Users: 4,
	}, 1, 7)
	for _, ts := range workload.PerfTimeseries(recs[:5], time.Minute, 1) {
		if err := perf.StoreJob(sat.DB, ts); err != nil {
			t.Fatal(err)
		}
	}

	// Cloud events.
	t0 := time.Date(2017, 4, 1, 0, 0, 0, 0, time.UTC)
	events := []cloud.Event{
		{VMID: "vm1", Resource: "research-cloud", User: "u", Project: "p", InstanceType: "m1",
			Type: cloud.EvStart, Time: t0, Cores: 4, MemoryGB: 8},
		{VMID: "vm1", Resource: "research-cloud", User: "u", Project: "p", InstanceType: "m1",
			Type: cloud.EvTerminate, Time: t0.Add(10 * time.Hour), Cores: 4, MemoryGB: 8},
	}
	if _, err := sat.Pipeline.IngestCloudEvents(events, t0.Add(24*time.Hour)); err != nil {
		t.Fatal(err)
	}

	// Storage snapshots.
	snaps := []storage.Snapshot{{
		Resource: "isilon", ResourceType: "persistent", Mountpoint: "/home",
		User: "u", PI: "p", Timestamp: t0, FileCount: 100, LogicalBytes: 1000, PhysicalBytes: 1200,
	}}
	if _, err := sat.Pipeline.IngestStorageSnapshots(snaps); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := sat.StartFederation(ctx); err != nil {
		t.Fatal(err)
	}
	defer sat.StopFederation()

	waitFor(t, func() bool {
		return hub.DB.Count("fed_center", "jobfact") == 20 &&
			hub.DB.Count("fed_center", cloud.SessionTable) == 1 &&
			hub.DB.Count("fed_center", storage.FactTable) == 1 &&
			hub.DB.Count("fed_center", perf.SummaryTable) == 5
	})

	// SUPReMM detail must NOT federate.
	fedSchema := hub.DB.Schema("fed_center")
	if fedSchema.Table(perf.TimeseriesTable) != nil || fedSchema.Table(perf.ScriptTable) != nil {
		t.Error("satellite-only SUPReMM detail leaked to the hub")
	}

	// Hub queries work per realm over the federated data.
	for realmName, metric := range map[string]string{
		"Jobs":    "job_count",
		"Cloud":   cloud.MetricCoreHours,
		"Storage": storage.MetricFileCount,
		"SUPReMM": "job_count",
	} {
		series, err := hub.Query(realmName, aggregate.Request{MetricID: metric, Period: aggregate.Year})
		if err != nil {
			t.Fatalf("%s query: %v", realmName, err)
		}
		if len(series) == 0 || series[0].Aggregate == 0 {
			t.Errorf("%s federated view empty: %+v", realmName, series)
		}
	}
	// Cloud core hours specifically: 4 cores * 10 h.
	cs, _ := hub.Query("Cloud", aggregate.Request{MetricID: cloud.MetricCoreHours, Period: aggregate.Year})
	if cs[0].Aggregate != 40 {
		t.Errorf("federated cloud core hours = %g, want 40", cs[0].Aggregate)
	}
}

// TestPerfWorkloadSummaries: synthesized profiles summarize with the
// expected personalities.
func TestPerfWorkloadSummaries(t *testing.T) {
	recs := workload.GenerateJobs(workload.ResourceModel{
		Name: "r", CoresPerNode: 4, MaxNodes: 2, SUFactor: 1,
		MonthlyWeight: [12]float64{1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0},
		MeanWallHours: 2, QueueNames: []string{"q"}, Users: 2,
	}, 10, 3)
	profiles := workload.PerfTimeseries(recs, time.Minute, 3)
	if len(profiles) != len(recs) {
		t.Fatalf("profiles = %d, want %d", len(profiles), len(recs))
	}
	for _, ts := range profiles {
		if len(ts.Samples) == 0 || len(ts.Samples) > 240 {
			t.Fatalf("job %d has %d samples", ts.JobID, len(ts.Samples))
		}
		sum, err := perf.Summarize(ts)
		if err != nil {
			t.Fatal(err)
		}
		for m := 0; m < perf.NumMetrics; m++ {
			if sum.Avg[m] < 0 || sum.Peak[m] < sum.Avg[m] {
				t.Fatalf("job %d metric %d: avg %g peak %g", ts.JobID, m, sum.Avg[m], sum.Peak[m])
			}
		}
		if ts.Script == "" {
			t.Fatal("missing job script")
		}
	}
}

package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"xdmodfed/internal/aggregate"
	"xdmodfed/internal/auth"
	"xdmodfed/internal/realm/jobs"
	"xdmodfed/internal/realm/storage"
	"xdmodfed/internal/replicate"
	"xdmodfed/internal/shredder"
	"xdmodfed/internal/warehouse"
)

// hubAggSnapshot renders every aggregation-table row of one realm as a
// sorted string list, for exact-equality comparison between the
// incremental-fold and full-rebuild paths.
func hubAggSnapshot(t *testing.T, hub *Hub, realmName string) []string {
	t.Helper()
	info, ok := hub.Registry.Get(realmName)
	if !ok {
		t.Fatalf("no realm %q", realmName)
	}
	var out []string
	hub.DB.View(func() error {
		for _, p := range aggregate.Periods() {
			tab, err := hub.DB.TableIn(aggregate.AggSchema(info), aggregate.AggTableName(info.FactTable, p))
			if err != nil {
				t.Fatal(err)
			}
			cols := tab.Columns()
			tab.Scan(func(r warehouse.Row) bool {
				var b strings.Builder
				b.WriteString(p.String())
				for _, c := range cols {
					fmt.Fprintf(&b, "|%s=%v", c, r.Get(c))
				}
				out = append(out, b.String())
				return true
			})
		}
		return nil
	})
	sort.Strings(out)
	return out
}

// TestIncrementalFoldMatchesRebuild is the equivalence property behind
// the incremental path: for randomized mixes of replicated job inserts
// (folded incrementally) and storage upserts (updates force the
// dirty/rebuild path), with chart queries racing the batches, the
// aggregation tables the hub maintains are bit-identical to what a
// full rebuild computes from the raw replicated data. Run under -race
// this also exercises the fold/rebuild coordination concurrently.
func TestIncrementalFoldMatchesRebuild(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) { runFoldEquivalence(t, seed) })
	}
}

func runFoldEquivalence(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	hub, err := NewHub(hubCfg("hub"))
	if err != nil {
		t.Fatal(err)
	}
	if err := hub.Register("sat"); err != nil {
		t.Fatal(err)
	}

	// Feeder warehouse standing in for a satellite: inserts land in its
	// binlog and ship to the hub like a tight sender would.
	sat := warehouse.Open("sat")
	if _, err := jobs.Setup(sat); err != nil {
		t.Fatal(err)
	}
	if _, err := storage.Setup(sat); err != nil {
		t.Fatal(err)
	}
	rw := replicate.NewRewriter("sat", replicate.Filter{})
	var pos uint64
	applyNext := func() {
		evs, err := sat.Binlog().ReadFrom(pos, 0)
		if err != nil {
			t.Fatal(err)
		}
		out, upTo := rw.ProcessBatch(evs)
		if err := hub.ApplyBatch("sat", upTo, out); err != nil {
			t.Fatal(err)
		}
		pos = upTo
	}

	// Readers hammer both realms while batches land, forcing rebuilds of
	// dirty realms to race in-flight folds.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for _, q := range []struct{ realm, metric string }{
		{jobs.RealmInfo().Name, jobs.MetricNumJobs},
		{storage.RealmInfo().Name, storage.MetricFileCount},
	} {
		wg.Add(1)
		go func(realmName, metric string) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := hub.Query(realmName, aggregate.Request{MetricID: metric, Period: aggregate.Year}); err != nil {
					t.Error(err)
					return
				}
			}
		}(q.realm, q.metric)
	}

	base := time.Date(2017, 1, 1, 0, 0, 0, 0, time.UTC)
	jobsInserted := 0
	var nextID int64 = 1
	for round := 0; round < 25; round++ {
		for n := 1 + rng.Intn(5); n > 0; n-- {
			// Distinct end times per fact keep last_* deterministic.
			end := base.Add(time.Duration(nextID) * 37 * time.Hour)
			wall := time.Duration(1+rng.Intn(7200)) * time.Second
			rec := shredder.JobRecord{
				LocalJobID: nextID, User: fmt.Sprintf("user%d", rng.Intn(4)), Account: "acct",
				Resource: "cluster", Queue: "batch", Nodes: 1, Cores: int64(1 + rng.Intn(16)),
				Submit: end.Add(-wall - time.Hour), Start: end.Add(-wall), End: end,
			}
			row, err := jobs.FactFromRecord(rec, nil)
			if err != nil {
				t.Fatal(err)
			}
			if err := sat.Upsert(jobs.SchemaName, jobs.FactTable, row); err != nil {
				t.Fatal(err)
			}
			nextID++
			jobsInserted++
		}
		if rng.Float64() < 0.5 {
			// Storage snapshots collide on (resource, user, day): the
			// second sample of a day is an update, which the fold cannot
			// express — the realm goes dirty and rebuilds on next read.
			ts := time.Date(2017, 3, 1+rng.Intn(3), rng.Intn(24), round, 0, 0, time.UTC)
			snap := storage.Snapshot{
				Resource: "fs1", ResourceType: "persistent", Mountpoint: "/home",
				User: fmt.Sprintf("u%d", rng.Intn(3)), PI: "pi",
				Timestamp: ts, FileCount: int64(1 + rng.Intn(1000)),
				LogicalBytes: int64(rng.Intn(1 << 30)), PhysicalBytes: int64(rng.Intn(1 << 30)),
				SoftThreshold: 1 << 30, HardThreshold: 1 << 31,
			}
			if err := sat.Upsert(storage.SchemaName, storage.FactTable, storage.FactRow(snap)); err != nil {
				t.Fatal(err)
			}
		}
		applyNext()
		if rng.Float64() < 0.3 {
			if _, err := hub.Query(jobs.RealmInfo().Name, aggregate.Request{MetricID: jobs.MetricCPUHours, Period: aggregate.Month}); err != nil {
				t.Fatal(err)
			}
		}
	}
	close(stop)
	wg.Wait()

	// Bring any dirty realm current the way routine reads do...
	if err := hub.EnsureAggregated(); err != nil {
		t.Fatal(err)
	}
	incJobs := hubAggSnapshot(t, hub, jobs.RealmInfo().Name)
	incStorage := hubAggSnapshot(t, hub, storage.RealmInfo().Name)

	// ...then force the full rebuild and compare: identical tables.
	if _, err := hub.AggregateFederation(); err != nil {
		t.Fatal(err)
	}
	fullJobs := hubAggSnapshot(t, hub, jobs.RealmInfo().Name)
	fullStorage := hubAggSnapshot(t, hub, storage.RealmInfo().Name)

	compare := func(realmName string, inc, full []string) {
		if len(inc) != len(full) {
			t.Fatalf("%s: incremental kept %d agg rows, rebuild computed %d", realmName, len(inc), len(full))
		}
		for i := range full {
			if inc[i] != full[i] {
				t.Fatalf("%s row %d differs:\n incremental %s\n rebuild     %s", realmName, i, inc[i], full[i])
			}
		}
	}
	compare("Jobs", incJobs, fullJobs)
	compare("Storage", incStorage, fullStorage)

	series, err := hub.Query(jobs.RealmInfo().Name, aggregate.Request{MetricID: jobs.MetricNumJobs, Period: aggregate.Year})
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, s := range series {
		total += s.Aggregate
	}
	if total != float64(jobsInserted) {
		t.Fatalf("hub sees %g jobs, satellite sent %d", total, jobsInserted)
	}
	if st := hub.Status(); st.Dirty {
		t.Fatalf("hub still dirty after full rebuild: %v", st.DirtyRealms)
	}
}

// TestIncrementalFoldServesWithoutRebuild: after an insert-only batch,
// the aggregates are already current — the realm is clean, and a query
// that skips EnsureAggregated (no rebuild possible) sees the new facts.
func TestIncrementalFoldServesWithoutRebuild(t *testing.T) {
	hub, err := NewHub(hubCfg("hub"))
	if err != nil {
		t.Fatal(err)
	}
	hub.Register("sat")
	sat := warehouse.Open("sat")
	if _, err := jobs.Setup(sat); err != nil {
		t.Fatal(err)
	}
	base := time.Date(2017, 3, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 10; i++ {
		rec := shredder.JobRecord{
			LocalJobID: int64(i + 1), User: "u", Account: "a",
			Resource: "r", Queue: "q", Nodes: 1, Cores: 4,
			Submit: base, Start: base, End: base.Add(time.Duration(i+1) * time.Hour),
		}
		row, err := jobs.FactFromRecord(rec, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := sat.Insert(jobs.SchemaName, jobs.FactTable, row); err != nil {
			t.Fatal(err)
		}
	}
	rw := replicate.NewRewriter("sat", replicate.Filter{})
	evs, err := sat.Binlog().ReadFrom(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	out, upTo := rw.ProcessBatch(evs)
	if err := hub.ApplyBatch("sat", upTo, out); err != nil {
		t.Fatal(err)
	}

	if st := hub.Status(); st.Dirty {
		t.Fatalf("insert-only batch left realms dirty: %v", st.DirtyRealms)
	}
	// Bypass the hub's EnsureAggregated wrapper: the aggregation tables
	// must already hold the batch, proving it was folded at apply time.
	series, err := hub.Instance.Query(jobs.RealmInfo().Name, aggregate.Request{MetricID: jobs.MetricNumJobs, Period: aggregate.Year})
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 1 || series[0].Aggregate != 10 {
		t.Fatalf("aggregates after fold = %+v, want 10 jobs", series)
	}
}

// TestIdentityObservedFromReorderedFactTable: the username offset is
// resolved from the replicated table definition, so a satellite whose
// jobfact columns are ordered differently still feeds the identity map
// correctly (regression: the offset used to be hardcoded).
func TestIdentityObservedFromReorderedFactTable(t *testing.T) {
	hub, err := NewHub(hubCfg("hub"))
	if err != nil {
		t.Fatal(err)
	}
	hub.Register("odd")

	// Move the username column to the end of the definition.
	def := jobs.Def()
	cols := make([]warehouse.Column, 0, len(def.Columns))
	var userCol warehouse.Column
	for _, c := range def.Columns {
		if c.Name == jobs.ColUser {
			userCol = c
			continue
		}
		cols = append(cols, c)
	}
	if userCol.Name == "" {
		t.Fatalf("jobs def has no %s column", jobs.ColUser)
	}
	def.Columns = append(cols, userCol)

	end := time.Date(2017, 5, 1, 12, 0, 0, 0, time.UTC)
	rec := shredder.JobRecord{
		LocalJobID: 1, User: "reordered-alice", Account: "a",
		Resource: "r", Queue: "q", Nodes: 1, Cores: 2,
		Submit: end.Add(-2 * time.Hour), Start: end.Add(-time.Hour), End: end,
	}
	m, err := jobs.FactFromRecord(rec, nil)
	if err != nil {
		t.Fatal(err)
	}
	row := make([]any, len(def.Columns))
	for i, c := range def.Columns {
		row[i] = m[c.Name]
	}
	events := []warehouse.Event{
		{Kind: warehouse.EvCreateSchema, Schema: "fed_odd", Time: end},
		{Kind: warehouse.EvCreateTable, Schema: "fed_odd", Table: jobs.FactTable, Def: &def, Time: end},
		{Kind: warehouse.EvInsert, Schema: "fed_odd", Table: jobs.FactTable, Row: row, Time: end},
	}
	if err := hub.ApplyBatch("odd", 3, events); err != nil {
		t.Fatal(err)
	}

	if _, ok := hub.Identity.Resolve(auth.InstanceUser{Instance: "odd", Username: "reordered-alice"}); !ok {
		t.Error("username from reordered fact table not observed by identity map")
	}
	// The fold must also read by column name, not position.
	series, err := hub.Query(jobs.RealmInfo().Name, aggregate.Request{MetricID: jobs.MetricNumJobs, GroupBy: jobs.DimUser, Period: aggregate.Year})
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 1 || series[0].Group != "reordered-alice" || series[0].Aggregate != 1 {
		t.Fatalf("series from reordered table = %+v", series)
	}
}

// TestLooseLoadDerivesLastEventFromDumpData: a loose dump's member
// freshness reflects the age of the shipped data, not the wall-clock
// load time (regression: LastEvent used to be set to time.Now), and
// the loaded realm is queued for rebuild.
func TestLooseLoadDerivesLastEventFromDumpData(t *testing.T) {
	sat, err := NewSatellite(satCfg("batch-site", []string{"r"}, ""))
	if err != nil {
		t.Fatal(err)
	}
	ingestJobs(t, sat, "r", 5, time.Hour, 1)
	var dump bytes.Buffer
	if err := replicate.Dump(sat.DB, []string{jobs.SchemaName}, &dump); err != nil {
		t.Fatal(err)
	}

	hub, err := NewHub(hubCfg("hub"))
	if err != nil {
		t.Fatal(err)
	}
	hub.Register("batch-site")
	if err := hub.LoadLooseDump("batch-site", &dump); err != nil {
		t.Fatal(err)
	}

	st := hub.Status()
	if len(st.DirtyRealms) != 1 || st.DirtyRealms[0] != jobs.RealmInfo().Name {
		t.Errorf("dirty realms after loose load = %v, want [Jobs]", st.DirtyRealms)
	}
	// ingestJobs: 5 jobs ending base + i*2h + 1h wall; the newest is
	// 2017-03-01 09:00 UTC — that is the dump's data age.
	want := time.Date(2017, 3, 1, 9, 0, 0, 0, time.UTC)
	var member *Member
	for i := range st.Members {
		if st.Members[i].Name == "batch-site" {
			member = &st.Members[i]
		}
	}
	if member == nil {
		t.Fatalf("members = %v", st.Members)
	}
	if !member.LastEvent.Equal(want) {
		t.Errorf("LastEvent = %v, want newest dump fact time %v", member.LastEvent, want)
	}
	if member.LastBatch.IsZero() {
		t.Error("LastBatch not set by loose load")
	}

	// The first read rebuilds the realm and leaves the hub clean.
	series, err := hub.Query(jobs.RealmInfo().Name, aggregate.Request{MetricID: jobs.MetricNumJobs, Period: aggregate.Year})
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 1 || series[0].Aggregate != 5 {
		t.Fatalf("series after loose load = %+v, want 5 jobs", series)
	}
	if st := hub.Status(); st.Dirty {
		t.Errorf("hub still dirty after read: %v", st.DirtyRealms)
	}
}

// Package core implements the XDMoD Federation module, the paper's
// central contribution (§II): satellite XDMoD instances replicate
// their raw realm data to a central federation hub, which aggregates
// it under its own configuration and serves "a combined, master view
// of job and performance data collected from individual XDMoD
// instances". Satellites retain full local functionality and control;
// the hub never alters replicated raw data.
package core

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"xdmodfed/internal/aggregate"
	"xdmodfed/internal/appkernel"
	"xdmodfed/internal/auth"
	"xdmodfed/internal/config"
	"xdmodfed/internal/hierarchy"
	"xdmodfed/internal/ingest"
	"xdmodfed/internal/obs"
	"xdmodfed/internal/realm"
	"xdmodfed/internal/realm/alloc"
	"xdmodfed/internal/realm/cloud"
	"xdmodfed/internal/realm/gateway"
	"xdmodfed/internal/realm/jobs"
	"xdmodfed/internal/realm/perf"
	"xdmodfed/internal/realm/storage"
	"xdmodfed/internal/replicate"
	"xdmodfed/internal/su"
	"xdmodfed/internal/warehouse"
	"xdmodfed/internal/warehouse/store"
)

// Version is the XDMoD software version of this build. The federation
// handshake requires hub and satellites to match ("each individual
// XDMoD instance must run the same version of XDMoD", paper §II-A).
const Version = "8.0.0-fed"

// FederatedTablesFor maps a realm name to the tables that replicate to
// a hub. The Jobs realm federates its fact table; Cloud federates
// reconstructed sessions; Storage federates usage facts; SUPReMM
// federates only job summaries (paper §II-C5 — the detailed
// timeseries and job scripts are deliberately satellite-only).
func FederatedTablesFor(realmName string) []string {
	switch realmName {
	case "Jobs":
		return []string{jobs.FactTable}
	case "Cloud":
		return []string{cloud.SessionTable}
	case "Storage":
		return []string{storage.FactTable}
	case "SUPReMM":
		return perf.FederatedTables()
	case "Gateways":
		return []string{gateway.FactTable}
	default:
		return nil
	}
}

// Instance is a fully assembled XDMoD installation: warehouse, realms,
// aggregation engine, ingestion pipeline, SU converter, and
// authentication. Both satellites and the hub embed one.
type Instance struct {
	Config     config.InstanceConfig
	DB         *warehouse.DB
	Engine     *aggregate.Engine
	Pipeline   *ingest.Pipeline
	Auth       *auth.Authenticator
	Registry   *realm.Registry
	Converter  *su.Converter
	AppKernels *appkernel.Monitor   // QoS module (paper §I-E)
	Hierarchy  *hierarchy.Hierarchy // institutional hierarchy, nil when unconfigured
}

// openWarehouse builds the instance's warehouse on the configured
// segment-store backend. The zero-value storage config reproduces the
// pre-tiering behavior exactly: an in-memory backend with sealing
// disabled. With backend "disk", cold segments spill to
// cfg.Storage.DataDir and tables seal their hot tail every
// cfg.Storage.TailRows() appended rows.
func openWarehouse(cfg config.InstanceConfig) (*warehouse.DB, error) {
	var backend store.Backend
	switch cfg.Storage.Backend {
	case "disk":
		d, err := store.OpenDisk(cfg.Storage.DataDir, cfg.Storage.MaxResidentBytes)
		if err != nil {
			return nil, fmt.Errorf("core: opening segment store: %w", err)
		}
		backend = d
	default:
		backend = store.NewMem()
	}
	return warehouse.OpenOptions(cfg.Name, warehouse.Options{
		Storage:     backend,
		HotTailRows: cfg.Storage.TailRows(),
	}), nil
}

// NewInstance builds an instance from its configuration: all four
// realms are set up, resources register their SU conversion factors,
// aggregation levels come from the config (instances "may be
// configured to aggregate their data differently", §II-C3), and SSO
// sources are installed.
func NewInstance(cfg config.InstanceConfig) (*Instance, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Version == "" {
		cfg.Version = Version
	}
	if n := cfg.Observability.TraceCapacity; n > 0 {
		// Process-wide: the last instance constructed wins, which is the
		// normal one-instance-per-process deployment.
		obs.DefaultTracer.SetCapacity(n)
	}
	db, err := openWarehouse(cfg)
	if err != nil {
		return nil, err
	}

	conv := su.NewConverter()
	for _, r := range cfg.Resources {
		if r.Type == "hpc" && r.SUFactor > 0 {
			if err := conv.Register(r.Name, r.SUFactor); err != nil {
				return nil, err
			}
		}
	}

	eng, err := aggregate.New(db, cfg.AggregationLevels)
	if err != nil {
		return nil, err
	}
	eng.SetRebuildWorkers(cfg.Aggregation.RebuildWorkers)
	if err := eng.SetSharding(cfg.Sharding.Shards, cfg.Sharding.Key); err != nil {
		return nil, err
	}

	reg := realm.NewRegistry()
	if _, err := jobs.Setup(db); err != nil {
		return nil, err
	}
	if err := cloud.Setup(db); err != nil {
		return nil, err
	}
	if _, err := storage.Setup(db); err != nil {
		return nil, err
	}
	if err := perf.Setup(db); err != nil {
		return nil, err
	}
	if err := alloc.Setup(db); err != nil {
		return nil, err
	}
	if _, err := gateway.Setup(db); err != nil {
		return nil, err
	}
	for _, info := range []realm.Info{jobs.RealmInfo(), cloud.RealmInfo(), storage.RealmInfo(), perf.RealmInfo(), alloc.RealmInfo(), gateway.RealmInfo()} {
		if err := reg.Register(info); err != nil {
			return nil, err
		}
		if err := eng.Setup(info); err != nil {
			return nil, err
		}
	}

	a := auth.NewAuthenticator(auth.NewVault())
	for _, s := range cfg.SSOSources {
		err := a.AddSSOSource(auth.SSOSource{
			Name: s.Name, Issuer: s.Issuer, Secret: s.Secret, Metadata: s.Metadata,
		})
		if err != nil {
			return nil, err
		}
	}

	ak, err := appkernel.NewMonitor(appkernel.DefaultKernels())
	if err != nil {
		return nil, err
	}
	var hier *hierarchy.Hierarchy
	if cfg.HierarchyFile != "" {
		f, err := os.Open(cfg.HierarchyFile)
		if err != nil {
			return nil, fmt.Errorf("core: hierarchy file: %w", err)
		}
		hier, err = hierarchy.Load(f)
		f.Close()
		if err != nil {
			return nil, err
		}
	}
	return &Instance{
		Config:     cfg,
		DB:         db,
		Engine:     eng,
		Pipeline:   &ingest.Pipeline{DB: db, Converter: conv, Engine: eng},
		Auth:       a,
		Registry:   reg,
		Converter:  conv,
		AppKernels: ak,
		Hierarchy:  hier,
	}, nil
}

// Query answers a chart query over the instance's own aggregated data.
func (in *Instance) Query(realmName string, req aggregate.Request) ([]aggregate.Series, error) {
	info, ok := in.Registry.Get(realmName)
	if !ok {
		return nil, aggregate.BadRequestf("core: instance %s has no realm %q", in.Config.Name, realmName)
	}
	return in.Engine.Query(info, req)
}

// QueryStats is Query plus per-query execution statistics (rows
// scanned), for the REST layer's explain and slow-query log.
func (in *Instance) QueryStats(realmName string, req aggregate.Request) ([]aggregate.Series, aggregate.QueryInfo, error) {
	info, ok := in.Registry.Get(realmName)
	if !ok {
		return nil, aggregate.QueryInfo{}, aggregate.BadRequestf("core: instance %s has no realm %q", in.Config.Name, realmName)
	}
	return in.Engine.QueryStats(info, req)
}

// QueryStatsCtx is QueryStats bounded by a context: cancellation
// aborts the aggregation scan between chunks, so a chart client that
// disconnects (or is shed mid-queue) stops consuming the warehouse.
func (in *Instance) QueryStatsCtx(ctx context.Context, realmName string, req aggregate.Request) ([]aggregate.Series, aggregate.QueryInfo, error) {
	info, ok := in.Registry.Get(realmName)
	if !ok {
		return nil, aggregate.QueryInfo{}, aggregate.BadRequestf("core: instance %s has no realm %q", in.Config.Name, realmName)
	}
	return in.Engine.QueryStatsCtx(ctx, info, req)
}

// AggregateAll (re)aggregates every realm from the instance's own raw
// data — the daily aggregation run.
func (in *Instance) AggregateAll() error {
	_, sp := obs.StartSpan(context.Background(), "instance.AggregateAll")
	defer sp.End()
	defer mAggSeconds.ObserveSince(time.Now())
	defer mAggRuns.Inc()
	for _, name := range in.Registry.Names() {
		info, _ := in.Registry.Get(name)
		if _, err := in.Engine.Reaggregate(info, []string{info.Schema}); err != nil {
			return err
		}
	}
	return nil
}

// RunDailyAggregation re-aggregates every realm on a fixed interval —
// the paper's "every day, aggregation processes run against newly
// ingested data" (§II-C3). It blocks until ctx is cancelled and
// returns the number of completed aggregation runs.
func (in *Instance) RunDailyAggregation(ctx context.Context, interval time.Duration) (int, error) {
	if interval <= 0 {
		return 0, fmt.Errorf("core: aggregation interval must be positive")
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	runs := 0
	for {
		select {
		case <-ctx.Done():
			return runs, nil
		case <-ticker.C:
			if err := in.AggregateAll(); err != nil {
				return runs, err
			}
			runs++
		}
	}
}

// Satellite is an instance that participates in federations as a data
// source.
type Satellite struct {
	*Instance

	mu      sync.Mutex
	cancels []context.CancelFunc
	senders []*replicate.Sender
}

// NewSatellite builds a satellite from its configuration.
func NewSatellite(cfg config.InstanceConfig) (*Satellite, error) {
	in, err := NewInstance(cfg)
	if err != nil {
		return nil, err
	}
	return &Satellite{Instance: in}, nil
}

// routeRealms resolves a hub route's realm names.
func (s *Satellite) routeRealms(route config.HubRoute) []string {
	realms := route.IncludeRealms
	if len(realms) == 0 {
		// Paper §II-C1: "the initial release of the federation module
		// replicates only the HPC Jobs realm data".
		realms = []string{"Jobs"}
	}
	return realms
}

// filterFor builds the replication filter for one hub route.
func (s *Satellite) filterFor(route config.HubRoute) (replicate.Filter, error) {
	include := map[string]bool{}
	for _, r := range s.routeRealms(route) {
		tables := FederatedTablesFor(r)
		if tables == nil {
			return replicate.Filter{}, fmt.Errorf("core: route to %s includes unknown realm %q", route.HubAddr, r)
		}
		for _, t := range tables {
			include[t] = true
		}
	}
	var exclude map[string]bool
	if len(route.ExcludeResources) > 0 {
		exclude = map[string]bool{}
		for _, r := range route.ExcludeResources {
			exclude[r] = true
		}
	}
	f := replicate.Filter{IncludeTables: include, ExcludeResources: exclude}
	if err := f.Validate(); err != nil {
		return replicate.Filter{}, err
	}
	return f, nil
}

// rewriterFor builds the replication rewriter for one hub route.
func (s *Satellite) rewriterFor(route config.HubRoute) (*replicate.Rewriter, error) {
	f, err := s.filterFor(route)
	if err != nil {
		return nil, err
	}
	return replicate.NewRewriter(s.Config.Name, f), nil
}

// pushdownFolderFor builds one route's aggregation-pushdown folder
// over the route's mergeable realms. An unmergeable realm is never
// silently pushed down — it falls back to raw fact replication with a
// startup warning. Returns nil (no error) when no realm qualifies.
func (s *Satellite) pushdownFolderFor(route config.HubRoute, flushInterval time.Duration) (*replicate.PushdownFolder, error) {
	f, err := s.filterFor(route)
	if err != nil {
		return nil, err
	}
	var infos []realm.Info
	for _, name := range s.routeRealms(route) {
		info, ok := s.Registry.Get(name)
		if !ok {
			continue // federates tables without a queryable realm; ship raw
		}
		if err := aggregate.MergeableRealm(info); err != nil {
			coreLog.Warn("realm is not mergeable; replicating its raw facts instead of pushing down",
				"realm", name, "hub", route.HubAddr, "err", err)
			continue
		}
		infos = append(infos, info)
	}
	if len(infos) == 0 {
		coreLog.Warn("no mergeable realms on route; aggregation pushdown disabled, replicating raw facts",
			"hub", route.HubAddr)
		return nil, nil
	}
	return replicate.NewPushdownFolder(s.Engine, infos, f, flushInterval)
}

// StartFederation starts one tight-replication sender per configured
// tight hub route. Loose routes are served by DumpForRoute instead.
// Senders reconnect with backoff and stop when ctx is cancelled.
func (s *Satellite) StartFederation(ctx context.Context) error {
	pushdown := s.Config.Replication.PushdownEnabled()
	var flushInterval time.Duration
	if pushdown {
		var err error
		if flushInterval, err = s.Config.Replication.PushdownFlushDuration(); err != nil {
			return err
		}
	}
	for _, route := range s.Config.Hubs {
		if route.Mode != "tight" {
			continue
		}
		rw, err := s.rewriterFor(route)
		if err != nil {
			return err
		}
		sender := &replicate.Sender{
			Instance: s.Config.Name,
			Version:  s.Config.Version,
			DB:       s.DB,
			Rewriter: rw,
		}
		if pushdown {
			if sender.Pushdown, err = s.pushdownFolderFor(route, flushInterval); err != nil {
				return err
			}
		}
		cctx, cancel := context.WithCancel(ctx)
		s.mu.Lock()
		s.cancels = append(s.cancels, cancel)
		s.senders = append(s.senders, sender)
		s.mu.Unlock()
		hubAddr := route.HubAddr
		go func() {
			// RunWithRetry only returns on clean shutdown or a permanent
			// handshake rejection (version mismatch, unregistered member,
			// the pushdown mode-switch guard demanding a resync). The
			// sender will never retry past a rejection, so without this
			// line the route would die with nothing in the logs.
			if err := sender.RunWithRetry(cctx, hubAddr, 0); err != nil {
				coreLog.Error("replication route stopped permanently",
					"instance", s.Config.Name, "hub", hubAddr, "err", err)
			}
		}()
	}
	return nil
}

// StopFederation stops all senders.
func (s *Satellite) StopFederation() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, c := range s.cancels {
		c()
	}
	s.cancels = nil
	s.senders = nil
}

// SenderStats returns the progress of all running senders.
func (s *Satellite) SenderStats() []replicate.SenderStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]replicate.SenderStats, 0, len(s.senders))
	for _, snd := range s.senders {
		out = append(out, snd.Stats())
	}
	return out
}

// TrimReplicatedLog discards binlog events every sender has already
// delivered, bounding a long-running satellite's memory. With no
// running senders nothing is trimmed (a disconnected hub must be able
// to resume). Returns the trimmed-through LSN.
func (s *Satellite) TrimReplicatedLog() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.senders) == 0 {
		return 0
	}
	min := uint64(0)
	for i, snd := range s.senders {
		pos := snd.Stats().Position
		if i == 0 || pos < min {
			min = pos
		}
	}
	if min > 0 {
		s.DB.Binlog().Trim(min)
	}
	return min
}

// DumpForRoute writes a loose-federation dump containing the realms of
// one route (paper §II-C2: "log files or database dumps could be
// periodically shipped to the federation hub, and batch processed
// there"). Resource exclusions are honored by dumping through the
// route's rewriter into a scratch store first.
func (s *Satellite) DumpForRoute(route config.HubRoute, w io.Writer) error {
	rw, err := s.rewriterFor(route)
	if err != nil {
		return err
	}
	scratch := warehouse.OpenWithoutBinlog("dump-" + s.Config.Name)
	defer scratch.Close()
	if _, err := replicate.Pump(s.DB, scratch, rw, 0); err != nil {
		return err
	}
	return scratch.Snapshot(w)
}

// RunLooseFederation periodically dumps each loose route and hands the
// dump to ship for delivery ("log files or database dumps could be
// periodically shipped to the federation hub, and batch processed
// there", paper §II-C2). It blocks until ctx is cancelled; ship errors
// are counted and retried next period rather than aborting the loop.
// Returns the number of successful shipments.
func (s *Satellite) RunLooseFederation(ctx context.Context, interval time.Duration,
	ship func(route config.HubRoute, dump io.Reader) error) (int, error) {
	if interval <= 0 {
		return 0, fmt.Errorf("core: loose federation interval must be positive")
	}
	var routes []config.HubRoute
	for _, r := range s.Config.Hubs {
		if r.Mode == "loose" {
			routes = append(routes, r)
		}
	}
	if len(routes) == 0 {
		return 0, fmt.Errorf("core: no loose hub routes configured")
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	shipped := 0
	for {
		select {
		case <-ctx.Done():
			return shipped, nil
		case <-ticker.C:
			// A tick pending alongside cancellation must not ship again:
			// select picks ready cases at random, so an extra dump could
			// otherwise race past a cancel issued mid-callback.
			if ctx.Err() != nil {
				return shipped, nil
			}
			for _, route := range routes {
				var dump bytes.Buffer
				if err := s.DumpForRoute(route, &dump); err != nil {
					continue
				}
				if err := ship(route, &dump); err == nil {
					shipped++
				}
			}
		}
	}
}

// RestoreFromHubBackup restores realm tables from a hub-regenerated
// backup (paper §II-E4: "the hub itself could be used to regenerate
// the databases for the member instances"). Tables land back in their
// realm schemas, located by table name.
func (s *Satellite) RestoreFromHubBackup(r io.Reader) error {
	scratch := warehouse.OpenWithoutBinlog("backup-restore")
	defer scratch.Close()
	if _, err := scratch.Restore(r); err != nil {
		return err
	}
	tableSchema := map[string]string{}
	for _, name := range s.Registry.Names() {
		info, _ := s.Registry.Get(name)
		for _, t := range FederatedTablesFor(name) {
			tableSchema[t] = info.Schema
		}
	}
	for _, sn := range scratch.Schemas() {
		ss := scratch.Schema(sn)
		for _, tn := range ss.Tables() {
			destSchema, ok := tableSchema[tn]
			if !ok {
				continue // non-realm table (e.g. hub bookkeeping)
			}
			src := ss.Table(tn)
			if _, err := s.DB.TableIn(destSchema, tn); err != nil {
				return err
			}
			// Bulk-load the backup table's columnar snapshot: one
			// validated LOAD transaction, no row materialization. The
			// scratch DB is discarded afterwards, so sharing its vectors
			// is safe.
			if err := s.DB.LoadColumns(destSchema, tn, src.Data().ColumnData()); err != nil {
				return err
			}
		}
	}
	return s.AggregateAll()
}

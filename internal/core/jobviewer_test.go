package core

import (
	"testing"
	"time"

	"xdmodfed/internal/realm/perf"
)

func TestJobDetail(t *testing.T) {
	sat, err := NewSatellite(satCfg("s", []string{"rush"}, ""))
	if err != nil {
		t.Fatal(err)
	}
	ingestJobs(t, sat, "rush", 3, 2*time.Hour, 1)

	// Attach SUPReMM detail to job 2.
	ts := perf.JobTimeseries{
		JobID: 2, Resource: "rush",
		Start:  time.Date(2017, 3, 1, 0, 0, 0, 0, time.UTC),
		Script: "#!/bin/bash\nsrun ./md\n",
	}
	for i := 0; i < 10; i++ {
		s := perf.Sample{JobID: 2, Resource: "rush", Offset: time.Duration(i) * 30 * time.Second}
		s.Values[0] = float64(50 + i) // cpu_user climbing
		ts.Samples = append(ts.Samples, s)
	}
	if err := perf.StoreJob(sat.DB, ts); err != nil {
		t.Fatal(err)
	}

	detail, err := sat.Instance.JobDetail("rush", 2)
	if err != nil {
		t.Fatal(err)
	}
	if detail.Accounting.JobID != 2 || detail.Accounting.Cores != 8 || detail.Accounting.WallSec != 7200 {
		t.Errorf("accounting = %+v", detail.Accounting)
	}
	if !detail.HasPerf {
		t.Fatal("perf summary missing")
	}
	if detail.AvgMetrics["cpu_user"] != 54.5 || detail.PeakMetrics["cpu_user"] != 59 {
		t.Errorf("summary = avg %g peak %g", detail.AvgMetrics["cpu_user"], detail.PeakMetrics["cpu_user"])
	}
	if len(detail.Timeseries) != 10 {
		t.Fatalf("timeseries points = %d", len(detail.Timeseries))
	}
	for i := 1; i < len(detail.Timeseries); i++ {
		if detail.Timeseries[i].OffsetSec < detail.Timeseries[i-1].OffsetSec {
			t.Fatal("timeseries not ordered")
		}
	}
	if detail.Script == "" {
		t.Error("script missing")
	}

	// A job without perf data still has accounting.
	plain, err := sat.Instance.JobDetail("rush", 1)
	if err != nil {
		t.Fatal(err)
	}
	if plain.HasPerf || len(plain.Timeseries) != 0 || plain.Script != "" {
		t.Errorf("job 1 should have no perf detail: %+v", plain)
	}

	if _, err := sat.Instance.JobDetail("rush", 999); err == nil {
		t.Error("missing job should error")
	}
	if _, err := sat.Instance.JobDetail("ghost", 1); err == nil {
		t.Error("missing resource should error")
	}
}

func TestJobDetailOnHubLacksSatelliteOnlyParts(t *testing.T) {
	// The hub's own realm schemas are empty (its data lives in
	// fed_<instance> schemas), so JobDetail on the hub's local schema
	// errors for replicated jobs — the Job Viewer's deep detail is a
	// satellite feature, matching §II-C5.
	hub, err := NewHub(hubCfg("hub"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := hub.Instance.JobDetail("anything", 1); err == nil {
		t.Error("hub-local job detail for unreplicated job should error")
	}
}

func TestAllocationsRealmRegistered(t *testing.T) {
	sat, err := NewSatellite(satCfg("s", []string{"rush"}, ""))
	if err != nil {
		t.Fatal(err)
	}
	names := sat.Registry.Names()
	want := map[string]bool{"Allocations": true, "Cloud": true, "Gateways": true, "Jobs": true, "SUPReMM": true, "Storage": true}
	if len(names) != len(want) {
		t.Fatalf("realms = %v", names)
	}
	for _, n := range names {
		if !want[n] {
			t.Errorf("unexpected realm %q", n)
		}
	}
}

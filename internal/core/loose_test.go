package core

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"testing"
	"time"

	"xdmodfed/internal/config"
	"xdmodfed/internal/realm/jobs"
)

func TestRunLooseFederationShipsDumps(t *testing.T) {
	cfg := satCfg("loose-site", []string{"r"}, "")
	cfg.Hubs = []config.HubRoute{{HubAddr: "hub", Mode: "loose"}}
	sat, err := NewSatellite(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ingestJobs(t, sat, "r", 5, time.Hour, 1)

	hub, err := NewHub(hubCfg("hub"))
	if err != nil {
		t.Fatal(err)
	}
	hub.Register("loose-site")

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan int, 1)
	go func() {
		n, err := sat.RunLooseFederation(ctx, time.Millisecond, func(route config.HubRoute, dump io.Reader) error {
			if route.HubAddr != "hub" {
				t.Errorf("route = %+v", route)
			}
			var buf bytes.Buffer
			if _, err := io.Copy(&buf, dump); err != nil {
				return err
			}
			if err := hub.LoadLooseDump("loose-site", &buf); err != nil {
				return err
			}
			cancel()
			return nil
		})
		if err != nil {
			t.Error(err)
		}
		done <- n
	}()
	select {
	case n := <-done:
		if n < 1 {
			t.Fatalf("shipped %d", n)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("no shipment")
	}
	if got := hub.DB.Count("fed_loose-site", jobs.FactTable); got != 5 {
		t.Errorf("hub rows = %d", got)
	}
}

func TestRunLooseFederationShipErrorsAreRetried(t *testing.T) {
	cfg := satCfg("s", []string{"r"}, "")
	cfg.Hubs = []config.HubRoute{{HubAddr: "hub", Mode: "loose"}}
	sat, _ := NewSatellite(cfg)
	ingestJobs(t, sat, "r", 1, time.Hour, 1)

	ctx, cancel := context.WithCancel(context.Background())
	attempts := 0
	done := make(chan int, 1)
	go func() {
		n, _ := sat.RunLooseFederation(ctx, time.Millisecond, func(_ config.HubRoute, _ io.Reader) error {
			attempts++
			if attempts < 3 {
				return fmt.Errorf("transient ship failure")
			}
			cancel()
			return nil
		})
		done <- n
	}()
	select {
	case n := <-done:
		if n != 1 || attempts < 3 {
			t.Errorf("shipped=%d attempts=%d", n, attempts)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("loop stalled")
	}
}

func TestRunLooseFederationValidation(t *testing.T) {
	sat, _ := NewSatellite(satCfg("s", []string{"r"}, ""))
	ctx := context.Background()
	if _, err := sat.RunLooseFederation(ctx, 0, nil); err == nil {
		t.Error("zero interval accepted")
	}
	if _, err := sat.RunLooseFederation(ctx, time.Second, nil); err == nil {
		t.Error("no loose routes accepted")
	}
}

func TestSenderStatsExposed(t *testing.T) {
	hub, err := NewHub(hubCfg("hub"))
	if err != nil {
		t.Fatal(err)
	}
	addr, _ := hub.Listen("127.0.0.1:0")
	defer hub.Close()
	hub.Register("s")
	sat, _ := NewSatellite(satCfg("s", []string{"r"}, addr))
	ingestJobs(t, sat, "r", 3, time.Hour, 1)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sat.StartFederation(ctx)
	defer sat.StopFederation()
	waitFor(t, func() bool { return hub.DB.Count("fed_s", jobs.FactTable) == 3 })
	// The hub commits the batch before its ack reaches the sender, so
	// the stats lag the hub's row count by one network round trip.
	waitFor(t, func() bool {
		stats := sat.SenderStats()
		return len(stats) == 1 && stats[0].SentEvents > 0 && stats[0].Position > 0
	})
	sat.StopFederation()
	if len(sat.SenderStats()) != 0 {
		t.Error("stats should clear after stop")
	}
}

func TestTrimReplicatedLog(t *testing.T) {
	hub, err := NewHub(hubCfg("hub"))
	if err != nil {
		t.Fatal(err)
	}
	addr, _ := hub.Listen("127.0.0.1:0")
	defer hub.Close()
	hub.Register("s")
	sat, _ := NewSatellite(satCfg("s", []string{"r"}, addr))
	// No senders yet: trimming must be a no-op.
	if got := sat.TrimReplicatedLog(); got != 0 {
		t.Errorf("trim without senders = %d", got)
	}
	ingestJobs(t, sat, "r", 10, time.Hour, 1)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sat.StartFederation(ctx)
	defer sat.StopFederation()
	waitFor(t, func() bool { return sat.SenderStats()[0].Position == sat.DB.Binlog().Last() })

	before := sat.DB.Binlog().Len()
	trimmed := sat.TrimReplicatedLog()
	if trimmed != sat.DB.Binlog().Last() {
		t.Errorf("trimmed to %d, want %d", trimmed, sat.DB.Binlog().Last())
	}
	if after := sat.DB.Binlog().Len(); after >= before || after != 0 {
		t.Errorf("log len %d -> %d", before, after)
	}
	// New events still replicate after the trim.
	ingestJobs(t, sat, "r", 2, time.Hour, 100)
	waitFor(t, func() bool { return hub.DB.Count("fed_s", "jobfact") == 12 })
}

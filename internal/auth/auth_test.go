package auth

import (
	"strings"
	"testing"
	"time"
)

func TestVaultCreateVerify(t *testing.T) {
	v := NewVault()
	u := User{Username: "alice", DisplayName: "Alice A", Email: "alice@uni.edu", Role: RoleUser}
	if err := v.Create(u, "correct horse battery"); err != nil {
		t.Fatal(err)
	}
	got, err := v.Verify("alice", "correct horse battery")
	if err != nil {
		t.Fatal(err)
	}
	if got.Email != u.Email {
		t.Errorf("user = %+v", got)
	}
	if _, err := v.Verify("alice", "wrong"); err == nil {
		t.Error("wrong password accepted")
	}
	if _, err := v.Verify("nobody", "x"); err == nil {
		t.Error("unknown user accepted")
	}
}

func TestVaultRejections(t *testing.T) {
	v := NewVault()
	if err := v.Create(User{Role: RoleUser}, "longenough"); err == nil {
		t.Error("empty username accepted")
	}
	if err := v.Create(User{Username: "x", Role: "wizard"}, "longenough"); err == nil {
		t.Error("bad role accepted")
	}
	if err := v.Create(User{Username: "x", Role: RoleUser}, "short"); err == nil {
		t.Error("short password accepted")
	}
	v.Create(User{Username: "x", Role: RoleUser}, "longenough")
	if err := v.Create(User{Username: "x", Role: RoleUser}, "longenough"); err == nil {
		t.Error("duplicate user accepted")
	}
}

func TestSSOManagedUserHasNoLocalPassword(t *testing.T) {
	v := NewVault()
	if err := v.Create(User{Username: "sso-user", Role: RoleUser, SSOManaged: true}, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Verify("sso-user", ""); err == nil {
		t.Error("SSO-managed user must not verify locally")
	}
}

func idpFixture() (*IdentityProvider, SSOSource) {
	idp := NewIdentityProvider("https://idp.uni.edu/shibboleth", "s3cret")
	idp.Register("jdoe", "idp-pass", "jdoe@uni.edu", "Jane Doe", map[string]string{"department": "Physics"})
	src := SSOSource{Name: "shibboleth", Issuer: idp.Issuer, Secret: idp.Secret, Metadata: true}
	return idp, src
}

func TestIdPIssueAndValidate(t *testing.T) {
	idp, src := idpFixture()
	now := time.Date(2018, 7, 1, 12, 0, 0, 0, time.UTC)
	a, err := idp.Authenticate("jdoe", "idp-pass", now)
	if err != nil {
		t.Fatal(err)
	}
	if err := src.ValidateAssertion(a, now); err != nil {
		t.Errorf("valid assertion rejected: %v", err)
	}
	if _, err := idp.Authenticate("jdoe", "wrong", now); err == nil {
		t.Error("IdP accepted wrong password")
	}
}

func TestAssertionTampering(t *testing.T) {
	idp, src := idpFixture()
	now := time.Now()
	a, _ := idp.Authenticate("jdoe", "idp-pass", now)

	tampered := a
	tampered.Subject = "root"
	if err := src.ValidateAssertion(tampered, now); err == nil {
		t.Error("tampered subject accepted")
	}
	tampered = a
	tampered.Attributes = map[string]string{"department": "Admin"}
	if err := src.ValidateAssertion(tampered, now); err == nil {
		t.Error("tampered attributes accepted")
	}
	wrongSecret := SSOSource{Name: "x", Issuer: src.Issuer, Secret: "other"}
	if err := wrongSecret.ValidateAssertion(a, now); err == nil {
		t.Error("wrong secret accepted")
	}
	wrongIssuer := SSOSource{Name: "x", Issuer: "other", Secret: src.Secret}
	if err := wrongIssuer.ValidateAssertion(a, now); err == nil {
		t.Error("issuer mismatch accepted")
	}
}

func TestAssertionExpiry(t *testing.T) {
	idp, src := idpFixture()
	now := time.Now()
	a, _ := idp.Authenticate("jdoe", "idp-pass", now)
	if err := src.ValidateAssertion(a, now.Add(10*time.Minute)); err == nil {
		t.Error("expired assertion accepted")
	}
	if err := src.ValidateAssertion(a, now.Add(-10*time.Minute)); err == nil {
		t.Error("future assertion accepted")
	}
}

func TestLoginLocalAndSSO(t *testing.T) {
	idp, src := idpFixture()
	v := NewVault()
	v.Create(User{Username: "local1", Role: RoleUser}, "localpass123")
	a := NewAuthenticator(v)
	if err := a.AddSSOSource(src); err != nil {
		t.Fatal(err)
	}

	// Figure 4, group R: direct local sign-on.
	s1, err := a.LoginLocal("local1", "localpass123")
	if err != nil {
		t.Fatal(err)
	}
	if s1.Via != "local" {
		t.Errorf("via = %q", s1.Via)
	}

	// Figure 4, group S: SSO sign-on with auto-provisioning.
	assertion, _ := idp.Authenticate("jdoe", "idp-pass", time.Now())
	s2, err := a.LoginSSO(assertion)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Via != "shibboleth" {
		t.Errorf("via = %q", s2.Via)
	}
	u, ok := v.Get("jdoe")
	if !ok || !u.SSOManaged {
		t.Fatalf("SSO user not provisioned: %+v ok=%v", u, ok)
	}
	// Metadata pre-population from the provider.
	if u.Email != "jdoe@uni.edu" || u.DisplayName != "Jane Doe" {
		t.Errorf("metadata not populated: %+v", u)
	}

	// Both sessions validate.
	for _, s := range []Session{s1, s2} {
		got, err := a.Validate(s.Token)
		if err != nil || got.Username != s.Username {
			t.Errorf("validate %q: %v", s.Username, err)
		}
	}
}

func TestMultipleSSOSources(t *testing.T) {
	idp1, src1 := idpFixture()
	idp2 := NewIdentityProvider("https://auth.globus.org", "globus-secret")
	idp2.Register("xsede_user", "pw", "xu@site.org", "X User", nil)
	src2 := SSOSource{Name: "globus", Issuer: idp2.Issuer, Secret: idp2.Secret}

	a := NewAuthenticator(NewVault())
	if err := a.AddSSOSource(src1); err != nil {
		t.Fatal(err)
	}
	if err := a.AddSSOSource(src2); err != nil {
		t.Fatal(err)
	}
	if err := a.AddSSOSource(src2); err == nil {
		t.Error("duplicate source accepted")
	}
	if err := a.AddSSOSource(SSOSource{}); err == nil {
		t.Error("incomplete source accepted")
	}
	if len(a.SSOSources()) != 2 {
		t.Errorf("sources = %v", a.SSOSources())
	}

	as1, _ := idp1.Authenticate("jdoe", "idp-pass", time.Now())
	as2, _ := idp2.Authenticate("xsede_user", "pw", time.Now())
	if _, err := a.LoginSSO(as1); err != nil {
		t.Errorf("source 1 login: %v", err)
	}
	if _, err := a.LoginSSO(as2); err != nil {
		t.Errorf("source 2 login: %v", err)
	}

	// An assertion signed by an untrusted IdP fails on every source.
	rogue := NewIdentityProvider("https://rogue.example", "rogue")
	rogue.Register("evil", "pw", "", "", nil)
	bad, _ := rogue.Authenticate("evil", "pw", time.Now())
	if _, err := a.LoginSSO(bad); err == nil {
		t.Error("rogue assertion accepted")
	}
}

func TestLoginSSONoSources(t *testing.T) {
	a := NewAuthenticator(NewVault())
	if _, err := a.LoginSSO(Assertion{}); err == nil || !strings.Contains(err.Error(), "SSO") {
		t.Errorf("got %v", err)
	}
}

func TestSessionExpiry(t *testing.T) {
	v := NewVault()
	v.Create(User{Username: "u", Role: RoleUser}, "password123")
	a := NewAuthenticator(v)
	now := time.Date(2018, 1, 1, 0, 0, 0, 0, time.UTC)
	a.SetClock(func() time.Time { return now })
	s, err := a.LoginLocal("u", "password123")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Validate(s.Token); err != nil {
		t.Fatal(err)
	}
	now = now.Add(9 * time.Hour)
	if _, err := a.Validate(s.Token); err == nil {
		t.Error("expired session accepted")
	}
}

func TestLogout(t *testing.T) {
	v := NewVault()
	v.Create(User{Username: "u", Role: RoleUser}, "password123")
	a := NewAuthenticator(v)
	s, _ := a.LoginLocal("u", "password123")
	a.Logout(s.Token)
	if _, err := a.Validate(s.Token); err == nil {
		t.Error("logged-out session accepted")
	}
}

func TestIdentityMapMergeByEmail(t *testing.T) {
	m := NewIdentityMap()
	// The paper's example: a CCR user who also has an XSEDE allocation.
	ccr := InstanceUser{Instance: "ccr", Username: "jsperhac"}
	xsede := InstanceUser{Instance: "xsede", Username: "jm.sperhac"}
	id1, err := m.Observe(ccr, "J Sperhac", "jsperhac@buffalo.edu")
	if err != nil {
		t.Fatal(err)
	}
	id2, err := m.Observe(xsede, "Jeanette S", "JSperhac@buffalo.edu") // case-insensitive email match
	if err != nil {
		t.Fatal(err)
	}
	if id1 != id2 {
		t.Fatalf("accounts with matching email should merge: %s vs %s", id1, id2)
	}
	accts := m.AccountsOf(ccr)
	if len(accts) != 2 {
		t.Errorf("accounts = %v", accts)
	}
}

func TestIdentityMapDistinctWithoutEmail(t *testing.T) {
	m := NewIdentityMap()
	a := InstanceUser{Instance: "i1", Username: "u"}
	b := InstanceUser{Instance: "i2", Username: "u"}
	id1, _ := m.Observe(a, "", "")
	id2, _ := m.Observe(b, "", "")
	if id1 == id2 {
		t.Fatal("same username on different instances must stay distinct without email evidence")
	}
	// Manual link merges them.
	if err := m.Link(a, b); err != nil {
		t.Fatal(err)
	}
	ra, _ := m.Resolve(a)
	rb, _ := m.Resolve(b)
	if ra != rb {
		t.Error("link did not merge")
	}
	if len(m.Persons()) != 1 {
		t.Errorf("persons = %v", m.Persons())
	}
	if err := m.Link(a, InstanceUser{Instance: "zz", Username: "zz"}); err == nil {
		t.Error("linking unknown account should fail")
	}
}

func TestIdentityMapObserveIdempotent(t *testing.T) {
	m := NewIdentityMap()
	acct := InstanceUser{Instance: "i", Username: "u"}
	id1, _ := m.Observe(acct, "U", "u@x.org")
	id2, _ := m.Observe(acct, "U", "u@x.org")
	if id1 != id2 {
		t.Error("re-observation created a new person")
	}
	p, ok := m.Person(id1)
	if !ok || len(p.Accounts) != 1 || len(p.Emails) != 1 {
		t.Errorf("person = %+v", p)
	}
	if _, err := m.Observe(InstanceUser{}, "", ""); err == nil {
		t.Error("empty account accepted")
	}
}

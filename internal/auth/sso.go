package auth

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// SSO: a SAML-style assertion flow. An identity provider (IdP) issues
// a signed assertion about a user; the XDMoD instance, acting as
// service provider (SP), validates the assertion against the shared
// secret of one of its configured SSO sources. "We have enabled
// web-browser Single-Sign On (SSO) for XDMoD by means of Security
// Assertion Markup Language (SAML)" (paper §II-D); signatures here are
// HMAC-SHA256 over a canonical rendering rather than XML-DSig, which
// preserves the trust and validation semantics.

// Assertion is a signed statement from an identity provider that a
// subject authenticated there.
type Assertion struct {
	Issuer      string            // identity provider id (matches an SSOSource issuer)
	Subject     string            // username at the IdP
	Email       string            //
	DisplayName string            //
	Attributes  map[string]string // provider metadata (department, role hints, ...)
	IssuedAt    time.Time         //
	Expires     time.Time         //
	Signature   string            // hex HMAC-SHA256
}

// canonical renders the signed fields deterministically.
func (a Assertion) canonical() string {
	keys := make([]string, 0, len(a.Attributes))
	for k := range a.Attributes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	fmt.Fprintf(&b, "issuer=%s\nsubject=%s\nemail=%s\nname=%s\niat=%d\nexp=%d\n",
		a.Issuer, a.Subject, a.Email, a.DisplayName, a.IssuedAt.Unix(), a.Expires.Unix())
	for _, k := range keys {
		fmt.Fprintf(&b, "attr.%s=%s\n", k, a.Attributes[k])
	}
	return b.String()
}

func sign(secret, payload string) string {
	m := hmac.New(sha256.New, []byte(secret))
	m.Write([]byte(payload))
	return hex.EncodeToString(m.Sum(nil))
}

// IdentityProvider issues assertions: the Shibboleth/Globus/Keycloak
// role. A federation hub configured in "identity provider" mode embeds
// one of these to authenticate users of the satellite instances
// (paper §II-D3).
type IdentityProvider struct {
	Issuer   string
	Secret   string
	Lifetime time.Duration // assertion validity; default 5 minutes

	mu       sync.RWMutex
	accounts map[string]idpAccount
}

type idpAccount struct {
	password    string
	email       string
	displayName string
	attributes  map[string]string
}

// NewIdentityProvider creates an IdP with the given issuer id and
// signing secret.
func NewIdentityProvider(issuer, secret string) *IdentityProvider {
	return &IdentityProvider{
		Issuer:   issuer,
		Secret:   secret,
		Lifetime: 5 * time.Minute,
		accounts: make(map[string]idpAccount),
	}
}

// Register adds an account at the identity provider.
func (p *IdentityProvider) Register(username, password, email, displayName string, attrs map[string]string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.accounts[username] = idpAccount{password: password, email: email, displayName: displayName, attributes: attrs}
}

// Authenticate verifies IdP credentials and issues a signed assertion.
func (p *IdentityProvider) Authenticate(username, password string, now time.Time) (Assertion, error) {
	p.mu.RLock()
	acct, ok := p.accounts[username]
	p.mu.RUnlock()
	if !ok || acct.password != password {
		return Assertion{}, fmt.Errorf("auth: identity provider %q rejected credentials for %q", p.Issuer, username)
	}
	a := Assertion{
		Issuer:      p.Issuer,
		Subject:     username,
		Email:       acct.email,
		DisplayName: acct.displayName,
		Attributes:  acct.attributes,
		IssuedAt:    now,
		Expires:     now.Add(p.Lifetime),
	}
	a.Signature = sign(p.Secret, a.canonical())
	return a, nil
}

// SSOSource is one identity provider an instance trusts. An instance
// may trust several ("administrators will be able to configure
// multiple SSO authentication sources", paper §II-D3).
type SSOSource struct {
	Name     string // "shibboleth", "globus", "keycloak", "ldap", ...
	Issuer   string
	Secret   string
	Metadata bool // provider supplies metadata fields for pre-population
}

// ValidateAssertion checks signature and validity window against one
// source.
func (s SSOSource) ValidateAssertion(a Assertion, now time.Time) error {
	if a.Issuer != s.Issuer {
		return fmt.Errorf("auth: assertion issuer %q does not match source %q", a.Issuer, s.Issuer)
	}
	want := sign(s.Secret, a.canonical())
	if !hmac.Equal([]byte(want), []byte(a.Signature)) {
		return fmt.Errorf("auth: assertion signature invalid for issuer %q", a.Issuer)
	}
	if now.Before(a.IssuedAt.Add(-time.Minute)) {
		return fmt.Errorf("auth: assertion from the future")
	}
	if now.After(a.Expires) {
		return fmt.Errorf("auth: assertion expired at %v", a.Expires)
	}
	if a.Subject == "" {
		return fmt.Errorf("auth: assertion has no subject")
	}
	return nil
}

package auth

import (
	"fmt"
	"testing"
	"time"
)

func cacheFixture(t *testing.T) (*Authenticator, *SessionCache, *time.Time) {
	t.Helper()
	v := NewVault()
	if err := v.Create(User{Username: "alice", Role: RoleUser}, "correct-horse-battery"); err != nil {
		t.Fatal(err)
	}
	a := NewAuthenticator(v)
	now := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	a.SetClock(func() time.Time { return now })
	return a, NewSessionCache(a, 8, 30*time.Second), &now
}

func TestSessionCacheHit(t *testing.T) {
	a, c, _ := cacheFixture(t)
	sess, err := a.LoginLocal("alice", "correct-horse-battery")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		got, err := c.Validate(sess.Token)
		if err != nil || got.Username != "alice" {
			t.Fatalf("validate %d: %+v, %v", i, got, err)
		}
	}
	hits, misses := c.Stats()
	if misses != 1 || hits != 2 {
		t.Fatalf("hits=%d misses=%d, want 2/1 (first fills, rest hit)", hits, misses)
	}
}

func TestSessionCacheTTLExpiry(t *testing.T) {
	a, c, now := cacheFixture(t)
	sess, _ := a.LoginLocal("alice", "correct-horse-battery")
	if _, err := c.Validate(sess.Token); err != nil {
		t.Fatal(err)
	}
	// Past the cache TTL (but well within the 8h session), the next
	// validate re-verifies against the authenticator and succeeds.
	*now = now.Add(31 * time.Second)
	if _, err := c.Validate(sess.Token); err != nil {
		t.Fatal(err)
	}
	if hits, misses := c.Stats(); hits != 0 || misses != 2 {
		t.Fatalf("hits=%d misses=%d, want 0/2 (TTL forced re-verification)", hits, misses)
	}
	// Past the SESSION expiry, a cached entry must not resurrect it.
	if _, err := c.Validate(sess.Token); err != nil {
		t.Fatal(err)
	}
	*now = now.Add(9 * time.Hour)
	if _, err := c.Validate(sess.Token); err == nil {
		t.Fatal("expired session validated from cache")
	}
}

func TestSessionCacheLogout(t *testing.T) {
	a, c, _ := cacheFixture(t)
	sess, _ := a.LoginLocal("alice", "correct-horse-battery")
	if _, err := c.Validate(sess.Token); err != nil {
		t.Fatal(err)
	}
	// Logout invalidates both the authenticator and the cache; the
	// very next request with the dead token must be refused.
	a.Logout(sess.Token)
	c.Invalidate(sess.Token)
	if _, err := c.Validate(sess.Token); err == nil {
		t.Fatal("logged-out token validated from cache")
	}
}

// A failed re-verification (e.g. token logged out elsewhere) drops
// any cached copy so it cannot be served after the TTL window races.
func TestSessionCacheDropsOnAuthFailure(t *testing.T) {
	a, c, now := cacheFixture(t)
	sess, _ := a.LoginLocal("alice", "correct-horse-battery")
	if _, err := c.Validate(sess.Token); err != nil {
		t.Fatal(err)
	}
	a.Logout(sess.Token) // bypass the cache's own Invalidate
	*now = now.Add(31 * time.Second)
	if _, err := c.Validate(sess.Token); err == nil {
		t.Fatal("dead token validated")
	}
	if _, err := c.Validate(sess.Token); err == nil {
		t.Fatal("dead token validated from residual cache entry")
	}
}

func TestSessionCacheBounded(t *testing.T) {
	a, _, _ := cacheFixture(t)
	c := NewSessionCache(a, 4, time.Minute)
	var tokens []string
	for i := 0; i < 10; i++ {
		if err := a.vault.Create(User{Username: fmt.Sprintf("u%d", i), Role: RoleUser}, "correct-horse-battery"); err != nil {
			t.Fatal(err)
		}
		sess, err := a.LoginLocal(fmt.Sprintf("u%d", i), "correct-horse-battery")
		if err != nil {
			t.Fatal(err)
		}
		tokens = append(tokens, sess.Token)
		if _, err := c.Validate(sess.Token); err != nil {
			t.Fatal(err)
		}
	}
	c.mu.RLock()
	n := len(c.entries)
	c.mu.RUnlock()
	if n > 4 {
		t.Fatalf("cache holds %d entries, want <= 4", n)
	}
	// Evicted tokens still validate (via the authenticator) — eviction
	// costs a re-verification, never correctness.
	for _, tok := range tokens {
		if _, err := c.Validate(tok); err != nil {
			t.Fatalf("evicted token failed validation: %v", err)
		}
	}
}

package auth

import (
	"sync"
	"sync/atomic"
	"time"

	"xdmodfed/internal/obs"
)

// SessionCache memoizes verified bearer tokens so token verification
// — a vault/SSO round trip in a full deployment, a shared-lock map
// probe here — stays off the per-request hot path. Entries live for a
// short TTL (and never past the session's own expiry), are dropped
// eagerly on logout, and the cache is bounded: at capacity the oldest
// cached verification is evicted, which only costs that token one
// re-verification.
//
// Correctness: a cached session is a verification performed at most
// TTL ago. The only event that invalidates a token early is logout,
// which the REST layer forwards via Invalidate, so the cache never
// serves a logged-out session. Session expiry is enforced directly on
// every hit.

// Session-cache defaults.
const (
	DefaultSessionCacheEntries = 4096
	DefaultSessionCacheTTL     = time.Minute
)

var (
	mSessHits = obs.Default.Counter("xdmodfed_auth_session_cache_hits_total",
		"Bearer-token verifications served from the session cache.")
	mSessMisses = obs.Default.Counter("xdmodfed_auth_session_cache_misses_total",
		"Bearer-token verifications that had to hit the authenticator.")
	mSessEvictions = obs.Default.Counter("xdmodfed_auth_session_cache_evictions_total",
		"Cached session verifications evicted for capacity.")
)

type cachedSession struct {
	sess       Session
	verifiedAt time.Time
}

// SessionCache fronts an Authenticator's Validate with a bounded TTL
// memo. It shares the authenticator's clock, so tests driving a fake
// clock exercise expiry deterministically.
type SessionCache struct {
	auth       *Authenticator
	ttl        time.Duration
	maxEntries int

	mu      sync.RWMutex
	entries map[string]cachedSession
	order   []string // insert order; front = oldest (eviction victim)

	hits, misses atomic.Uint64
}

// NewSessionCache builds a cache over a. maxEntries <= 0 uses
// DefaultSessionCacheEntries; ttl <= 0 uses DefaultSessionCacheTTL.
func NewSessionCache(a *Authenticator, maxEntries int, ttl time.Duration) *SessionCache {
	if maxEntries <= 0 {
		maxEntries = DefaultSessionCacheEntries
	}
	if ttl <= 0 {
		ttl = DefaultSessionCacheTTL
	}
	return &SessionCache{
		auth: a, ttl: ttl, maxEntries: maxEntries,
		entries: make(map[string]cachedSession),
	}
}

// Validate resolves a token, serving a recent verification from the
// cache when one exists and falling through to the authenticator
// otherwise. The session's own expiry is enforced on every path.
func (c *SessionCache) Validate(token string) (Session, error) {
	now := c.auth.now()
	c.mu.RLock()
	e, ok := c.entries[token]
	c.mu.RUnlock()
	if ok && now.Sub(e.verifiedAt) <= c.ttl && now.Before(e.sess.Expires) {
		c.hits.Add(1)
		mSessHits.Inc()
		return e.sess, nil
	}
	c.misses.Add(1)
	mSessMisses.Inc()
	sess, err := c.auth.Validate(token)
	if err != nil {
		// Verification failed (unknown or expired): make sure no cached
		// copy outlives the authoritative answer.
		if ok {
			c.Invalidate(token)
		}
		return Session{}, err
	}
	c.mu.Lock()
	if _, exists := c.entries[token]; !exists {
		for len(c.entries) >= c.maxEntries && len(c.order) > 0 {
			victim := c.order[0]
			c.order = c.order[1:]
			if _, live := c.entries[victim]; live {
				delete(c.entries, victim)
				mSessEvictions.Inc()
			}
		}
		c.order = append(c.order, token)
	}
	c.entries[token] = cachedSession{sess: sess, verifiedAt: now}
	c.mu.Unlock()
	return sess, nil
}

// Invalidate drops a token's cached verification (logout). The token
// may keep a stale slot in the eviction order; it is skipped when its
// turn comes.
func (c *SessionCache) Invalidate(token string) {
	c.mu.Lock()
	delete(c.entries, token)
	c.mu.Unlock()
}

// Stats reports cache hit/miss counters (tests, diagnostics).
func (c *SessionCache) Stats() (hits, misses uint64) {
	return c.hits.Load(), c.misses.Load()
}

package auth

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Identity mapping across federation members (paper §II-D4):
// "consider a CCR user who also has an XSEDE allocation ... the user
// would appear twice in the federation; once as the CCR user, once as
// the XSEDE user. The work necessary to federate such user identities
// must be performed separately on the federation database". This is
// that work, implemented as the paper's stated future-release goal: a
// hub-side map from per-instance usernames to global persons, with
// automatic merging by verified email plus manual linking.

// InstanceUser identifies a username on one federation member.
type InstanceUser struct {
	Instance string
	Username string
}

func (iu InstanceUser) String() string { return iu.Instance + "/" + iu.Username }

// Person is one de-duplicated human in the federation.
type Person struct {
	ID          string
	DisplayName string
	Emails      []string
	Accounts    []InstanceUser
}

// IdentityMap maintains the person registry on the federation hub.
type IdentityMap struct {
	mu      sync.RWMutex
	nextID  int
	persons map[string]*Person      // id -> person
	byAcct  map[InstanceUser]string // account -> person id
	byEmail map[string]string       // lowercased email -> person id
}

// NewIdentityMap returns an empty identity map.
func NewIdentityMap() *IdentityMap {
	return &IdentityMap{
		persons: make(map[string]*Person),
		byAcct:  make(map[InstanceUser]string),
		byEmail: make(map[string]string),
	}
}

// Observe records an account seen in replicated data, merging it into
// an existing person when the email matches one already known
// (automatic de-duplication), and creating a new person otherwise.
// It returns the person id.
func (m *IdentityMap) Observe(acct InstanceUser, displayName, email string) (string, error) {
	if acct.Instance == "" || acct.Username == "" {
		return "", fmt.Errorf("auth: identity observation needs instance and username")
	}
	email = strings.ToLower(strings.TrimSpace(email))
	m.mu.Lock()
	defer m.mu.Unlock()

	if id, ok := m.byAcct[acct]; ok {
		p := m.persons[id]
		if email != "" && m.byEmail[email] == "" {
			p.Emails = append(p.Emails, email)
			m.byEmail[email] = id
		}
		return id, nil
	}
	if email != "" {
		if id, ok := m.byEmail[email]; ok {
			p := m.persons[id]
			p.Accounts = append(p.Accounts, acct)
			m.byAcct[acct] = id
			return id, nil
		}
	}
	m.nextID++
	id := fmt.Sprintf("person-%d", m.nextID)
	p := &Person{ID: id, DisplayName: displayName, Accounts: []InstanceUser{acct}}
	if email != "" {
		p.Emails = []string{email}
		m.byEmail[email] = id
	}
	m.persons[id] = p
	m.byAcct[acct] = id
	return id, nil
}

// Link manually merges the persons owning two accounts (the admin
// fallback when no shared email exists). The surviving person is the
// first account's.
func (m *IdentityMap) Link(a, b InstanceUser) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	idA, okA := m.byAcct[a]
	idB, okB := m.byAcct[b]
	if !okA || !okB {
		return fmt.Errorf("auth: cannot link %v and %v: unknown account", a, b)
	}
	if idA == idB {
		return nil
	}
	pa, pb := m.persons[idA], m.persons[idB]
	pa.Accounts = append(pa.Accounts, pb.Accounts...)
	pa.Emails = append(pa.Emails, pb.Emails...)
	for _, acct := range pb.Accounts {
		m.byAcct[acct] = idA
	}
	for _, e := range pb.Emails {
		m.byEmail[e] = idA
	}
	delete(m.persons, idB)
	return nil
}

// Resolve returns the person id owning an account.
func (m *IdentityMap) Resolve(acct InstanceUser) (string, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	id, ok := m.byAcct[acct]
	return id, ok
}

// Person returns a person by id (a copy).
func (m *IdentityMap) Person(id string) (Person, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	p, ok := m.persons[id]
	if !ok {
		return Person{}, false
	}
	cp := *p
	cp.Emails = append([]string(nil), p.Emails...)
	cp.Accounts = append([]InstanceUser(nil), p.Accounts...)
	return cp, true
}

// Persons returns all person ids, sorted.
func (m *IdentityMap) Persons() []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]string, 0, len(m.persons))
	for id := range m.persons {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// AccountsOf returns every federation account of the person owning
// acct — the query the paper motivates: "identify all jobs run by that
// individual across all federated resources".
func (m *IdentityMap) AccountsOf(acct InstanceUser) []InstanceUser {
	m.mu.RLock()
	defer m.mu.RUnlock()
	id, ok := m.byAcct[acct]
	if !ok {
		return nil
	}
	p := m.persons[id]
	out := append([]InstanceUser(nil), p.Accounts...)
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

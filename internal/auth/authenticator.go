package auth

import (
	"fmt"
	"sync"
	"time"
)

// Session is a signed-in user's session on an instance.
type Session struct {
	Token    string
	Username string
	Role     Role
	Via      string // "local" or the SSO source name
	Expires  time.Time
}

// Authenticator is one instance's authentication service: a local
// vault plus zero or more trusted SSO sources. It mirrors the paper's
// Figure 4: "User Group R authenticates directly on the XDMoD
// instance; User Group S authenticates to the same instance using
// web-browser Single-Sign On".
type Authenticator struct {
	vault   *Vault
	now     func() time.Time
	ttl     time.Duration
	mu      sync.RWMutex
	sources map[string]SSOSource // by source name
	tokens  map[string]Session
}

// NewAuthenticator creates an authenticator over a vault.
func NewAuthenticator(v *Vault) *Authenticator {
	return &Authenticator{
		vault:   v,
		now:     time.Now,
		ttl:     8 * time.Hour,
		sources: make(map[string]SSOSource),
		tokens:  make(map[string]Session),
	}
}

// SetClock overrides the time source (tests).
func (a *Authenticator) SetClock(now func() time.Time) { a.now = now }

// Vault returns the underlying account vault.
func (a *Authenticator) Vault() *Vault { return a.vault }

// AddSSOSource registers a trusted SSO source. Historically "an
// installation can specify only a single SSO authentication source"
// (paper §II-D2); multiple sources — the paper's planned enhancement —
// are supported here.
func (a *Authenticator) AddSSOSource(s SSOSource) error {
	if s.Name == "" || s.Issuer == "" || s.Secret == "" {
		return fmt.Errorf("auth: SSO source needs name, issuer and secret")
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, ok := a.sources[s.Name]; ok {
		return fmt.Errorf("auth: SSO source %q already configured", s.Name)
	}
	a.sources[s.Name] = s
	return nil
}

// SSOSources returns the configured source names.
func (a *Authenticator) SSOSources() []string {
	a.mu.RLock()
	defer a.mu.RUnlock()
	out := make([]string, 0, len(a.sources))
	for n := range a.sources {
		out = append(out, n)
	}
	return out
}

// LoginLocal authenticates with the instance's own password store.
func (a *Authenticator) LoginLocal(username, password string) (Session, error) {
	u, err := a.vault.Verify(username, password)
	if err != nil {
		return Session{}, err
	}
	return a.newSession(u, "local"), nil
}

// LoginSSO validates an assertion against every configured source and
// signs the subject in, auto-provisioning a local account on first
// sign-on. When the matched source supplies metadata, the account's
// display fields are (re)populated from the assertion — the paper's
// "more customized user experience for first-time XDMoD users"
// (§II-D1).
func (a *Authenticator) LoginSSO(assertion Assertion) (Session, error) {
	a.mu.RLock()
	var matched *SSOSource
	var lastErr error
	for _, s := range a.sources {
		s := s
		if err := s.ValidateAssertion(assertion, a.now()); err == nil {
			matched = &s
			break
		} else {
			lastErr = err
		}
	}
	a.mu.RUnlock()
	if matched == nil {
		if lastErr == nil {
			lastErr = fmt.Errorf("auth: no SSO sources configured")
		}
		return Session{}, fmt.Errorf("auth: SSO login failed: %w", lastErr)
	}

	u, exists := a.vault.Get(assertion.Subject)
	if !exists {
		u = User{Username: assertion.Subject, Role: RoleUser, SSOManaged: true}
	}
	if matched.Metadata || !exists {
		if assertion.DisplayName != "" {
			u.DisplayName = assertion.DisplayName
		}
		if assertion.Email != "" {
			u.Email = assertion.Email
		}
	}
	if err := a.vault.Upsert(u); err != nil {
		return Session{}, err
	}
	return a.newSession(u, matched.Name), nil
}

func (a *Authenticator) newSession(u User, via string) Session {
	s := Session{
		Token:    randomToken(),
		Username: u.Username,
		Role:     u.Role,
		Via:      via,
		Expires:  a.now().Add(a.ttl),
	}
	a.mu.Lock()
	a.tokens[s.Token] = s
	a.mu.Unlock()
	return s
}

// Validate resolves a session token.
func (a *Authenticator) Validate(token string) (Session, error) {
	a.mu.RLock()
	s, ok := a.tokens[token]
	a.mu.RUnlock()
	if !ok {
		return Session{}, fmt.Errorf("auth: unknown session token")
	}
	if a.now().After(s.Expires) {
		a.mu.Lock()
		delete(a.tokens, token)
		a.mu.Unlock()
		return Session{}, fmt.Errorf("auth: session expired")
	}
	return s, nil
}

// Logout invalidates a token.
func (a *Authenticator) Logout(token string) {
	a.mu.Lock()
	delete(a.tokens, token)
	a.mu.Unlock()
}

// Package auth implements XDMoD's authentication layer as required by
// federation (paper §II-D): local password sign-on, web-style
// single-sign-on (SSO) with signed assertions from pluggable identity
// providers (the Shibboleth/Globus/Keycloak/LDAP roles), support for
// multiple SSO sources per instance and identity-provider vs
// service-provider modes (§II-D3), and the user identity mapping
// across federation members that the paper flags as future work
// (§II-D4).
package auth

import (
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"sync"
)

// Role is a user's XDMoD role, deciding which views and metrics they
// may access (end user, PI, center staff, manager; paper §I-A).
type Role string

// Roles.
const (
	RoleUser    Role = "user"
	RolePI      Role = "pi"
	RoleStaff   Role = "center_staff"
	RoleManager Role = "manager"
)

// Valid reports whether r is a known role.
func (r Role) Valid() bool {
	switch r {
	case RoleUser, RolePI, RoleStaff, RoleManager:
		return true
	}
	return false
}

// User is one account on an XDMoD instance.
type User struct {
	Username    string
	DisplayName string
	Email       string
	Role        Role
	SSOManaged  bool // provisioned via SSO; has no local password
}

// Vault stores local accounts with salted, iterated password hashes.
type Vault struct {
	mu    sync.RWMutex
	users map[string]*vaultEntry
}

type vaultEntry struct {
	user User
	salt []byte
	hash []byte
}

// hashIterations strengthens the password hash by iterating; fixed so
// hashes stay verifiable.
const hashIterations = 4096

func hashPassword(salt []byte, password string) []byte {
	h := sha256.Sum256(append(append([]byte(nil), salt...), password...))
	for i := 1; i < hashIterations; i++ {
		h = sha256.Sum256(h[:])
	}
	return h[:]
}

// NewVault returns an empty account vault.
func NewVault() *Vault {
	return &Vault{users: make(map[string]*vaultEntry)}
}

// Create adds a local account with a password.
func (v *Vault) Create(u User, password string) error {
	if u.Username == "" {
		return fmt.Errorf("auth: username must not be empty")
	}
	if !u.Role.Valid() {
		return fmt.Errorf("auth: user %q has invalid role %q", u.Username, u.Role)
	}
	if !u.SSOManaged && len(password) < 8 {
		return fmt.Errorf("auth: password for %q must be at least 8 characters", u.Username)
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if _, ok := v.users[u.Username]; ok {
		return fmt.Errorf("auth: user %q already exists", u.Username)
	}
	e := &vaultEntry{user: u}
	if !u.SSOManaged {
		e.salt = make([]byte, 16)
		if _, err := rand.Read(e.salt); err != nil {
			return err
		}
		e.hash = hashPassword(e.salt, password)
	}
	v.users[u.Username] = e
	return nil
}

// Verify checks a local password. SSO-managed users always fail local
// verification (they have no local password), but users that hold both
// can sign in either way ("users retain the ability to authenticate
// directly on the XDMoD instance", paper §II-D).
func (v *Vault) Verify(username, password string) (User, error) {
	v.mu.RLock()
	e, ok := v.users[username]
	v.mu.RUnlock()
	if !ok {
		return User{}, fmt.Errorf("auth: unknown user %q", username)
	}
	if e.user.SSOManaged || e.hash == nil {
		return User{}, fmt.Errorf("auth: user %q has no local password", username)
	}
	if !hmac.Equal(e.hash, hashPassword(e.salt, password)) {
		return User{}, fmt.Errorf("auth: bad password for %q", username)
	}
	return e.user, nil
}

// Get returns a user by name.
func (v *Vault) Get(username string) (User, bool) {
	v.mu.RLock()
	defer v.mu.RUnlock()
	e, ok := v.users[username]
	if !ok {
		return User{}, false
	}
	return e.user, true
}

// Upsert creates or updates an account without touching its password
// (used by SSO auto-provisioning and metadata refresh).
func (v *Vault) Upsert(u User) error {
	if u.Username == "" {
		return fmt.Errorf("auth: username must not be empty")
	}
	if !u.Role.Valid() {
		return fmt.Errorf("auth: user %q has invalid role %q", u.Username, u.Role)
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if e, ok := v.users[u.Username]; ok {
		e.user = u
		return nil
	}
	v.users[u.Username] = &vaultEntry{user: u}
	return nil
}

// Users returns all usernames, sorted.
func (v *Vault) Users() []string {
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := make([]string, 0, len(v.users))
	for u := range v.users {
		out = append(out, u)
	}
	sort.Strings(out)
	return out
}

// randomToken returns a 32-byte random hex string.
func randomToken() string {
	b := make([]byte, 32)
	if _, err := rand.Read(b); err != nil {
		panic("auth: crypto/rand unavailable: " + err.Error())
	}
	return hex.EncodeToString(b)
}

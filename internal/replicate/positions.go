package replicate

import (
	"xdmodfed/internal/warehouse"
)

// Position tracking: the hub records, per satellite instance, the last
// binlog LSN it has durably applied — the analog of Tungsten's
// trep_commit_seqno table. On reconnect the satellite resumes from the
// stored position, making tight replication restartable.

// PositionSchema and PositionTable locate the commit-position table on
// the hub warehouse.
const (
	PositionSchema = "federation"
	PositionTable  = "commit_seqno"
)

func positionDef() warehouse.TableDef {
	return warehouse.TableDef{
		Name: PositionTable,
		Columns: []warehouse.Column{
			{Name: "instance", Type: warehouse.TypeString},
			{Name: "lsn", Type: warehouse.TypeInt},
		},
		PrimaryKey: []string{"instance"},
	}
}

// PositionStore reads and writes per-instance commit positions in a
// hub warehouse.
type PositionStore struct {
	db *warehouse.DB
}

// NewPositionStore creates (if needed) the commit-position table.
func NewPositionStore(db *warehouse.DB) (*PositionStore, error) {
	s := db.EnsureSchema(PositionSchema)
	if _, err := s.EnsureTable(positionDef()); err != nil {
		return nil, err
	}
	return &PositionStore{db: db}, nil
}

// Get returns the stored position for an instance (0 when none).
func (p *PositionStore) Get(instance string) uint64 {
	tab, err := p.db.TableIn(PositionSchema, PositionTable)
	if err != nil {
		return 0
	}
	var pos uint64
	p.db.View(func() error {
		if r, ok := tab.GetByKey(instance); ok {
			pos = uint64(r.Int("lsn"))
		}
		return nil
	})
	return pos
}

// Set records the position for an instance.
func (p *PositionStore) Set(instance string, lsn uint64) error {
	return p.db.Upsert(PositionSchema, PositionTable, map[string]any{
		"instance": instance,
		"lsn":      int64(lsn),
	})
}

// Instances returns the instances with stored positions.
func (p *PositionStore) Instances() []string {
	tab, err := p.db.TableIn(PositionSchema, PositionTable)
	if err != nil {
		return nil
	}
	var out []string
	p.db.View(func() error {
		for _, r := range tab.SortedRows("instance") {
			out = append(out, r.String("instance"))
		}
		return nil
	})
	return out
}

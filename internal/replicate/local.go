package replicate

import (
	"context"
	"fmt"
	"io"

	"xdmodfed/internal/warehouse"
)

// Local (in-process) replication and loose (dump/ship/load)
// federation. Tight network replication lives in net.go.

// Pump copies binlog events from src (starting after fromLSN) through
// the rewriter into dst, returning the new position. It drains
// whatever is currently in the log without blocking; call repeatedly
// or use a Sender for continuous replication.
func Pump(src *warehouse.DB, dst *warehouse.DB, rw *Rewriter, fromLSN uint64) (uint64, error) {
	pos := fromLSN
	for {
		evs, err := src.Binlog().ReadFrom(pos, 1024)
		if err != nil {
			return pos, err
		}
		if len(evs) == 0 {
			return pos, nil
		}
		out, upTo := rw.ProcessBatch(evs)
		// One write transaction per batch: a single lock acquisition and
		// one columnar-snapshot publish per touched table.
		if n, err := dst.ApplyAll(out); err != nil {
			ev := out[n]
			return pos, fmt.Errorf("replicate: apply %s %s.%s: %w", ev.Kind, ev.Schema, ev.Table, err)
		}
		mPumpEvents.Add(uint64(len(out)))
		pos = upTo
	}
}

// PumpUntil keeps pumping, blocking for new events, until the context
// is cancelled or the source log closes. It reports positions through
// commit after each applied batch.
func PumpUntil(ctx context.Context, src, dst *warehouse.DB, rw *Rewriter, fromLSN uint64,
	commit func(uint64) error) error {
	pos := fromLSN
	for {
		evs, err := src.Binlog().Wait(ctx, pos, 1024)
		if err != nil {
			if err == warehouse.ErrLogClosed || ctx.Err() != nil {
				return nil
			}
			return err
		}
		out, upTo := rw.ProcessBatch(evs)
		if _, err := dst.ApplyAll(out); err != nil {
			return fmt.Errorf("replicate: apply: %w", err)
		}
		mPumpEvents.Add(uint64(len(out)))
		pos = upTo
		if commit != nil {
			if err := commit(pos); err != nil {
				return err
			}
		}
	}
}

// Dump writes a loose-federation dump of the named schemas (all when
// nil) of the satellite database: the "log files or database dumps
// [that] could be periodically shipped to the federation hub" of paper
// §II-C2.
func Dump(src *warehouse.DB, schemas []string, w io.Writer) error {
	return src.SnapshotSchemas(w, schemas)
}

// Load batch-loads a loose-federation dump into the hub, landing every
// dumped schema in the instance's hub schema. Tables already present
// are replaced (periodic re-ships supersede earlier ones). It returns
// the names of the tables that were loaded, so the hub can mark the
// affected realms for re-aggregation.
func Load(hub *warehouse.DB, instance string, r io.Reader) ([]string, error) {
	// A dump may contain several satellite schemas; they all collapse
	// into fed_<instance>. RestoreRenamed needs the rename per source
	// schema name, which we cannot know up front — so restore into a
	// scratch DB first, then copy tables across. This also keeps a
	// malformed dump from corrupting the hub.
	scratch := warehouse.OpenWithoutBinlog("loose-load")
	defer scratch.Close()
	if _, err := scratch.Restore(r); err != nil {
		return nil, err
	}
	target := hub.EnsureSchema(HubSchema(instance))
	var loaded []string
	for _, sn := range scratch.Schemas() {
		ss := scratch.Schema(sn)
		for _, tn := range ss.Tables() {
			st := ss.Table(tn)
			if _, err := target.EnsureTable(st.Def()); err != nil {
				return loaded, fmt.Errorf("replicate: loose load %s.%s: %w", HubSchema(instance), tn, err)
			}
			// Bulk-load the table's columnar snapshot: one validated
			// LOAD transaction per table, no row materialization. The
			// scratch DB is discarded after the loop, so sharing its
			// vectors with the hub table is safe.
			cd := st.Data().ColumnData()
			if err := hub.LoadColumns(HubSchema(instance), tn, cd); err != nil {
				return loaded, fmt.Errorf("replicate: loose load %s.%s: %w", HubSchema(instance), tn, err)
			}
			loaded = append(loaded, tn)
		}
	}
	return loaded, nil
}

package replicate

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"xdmodfed/internal/realm/jobs"
	"xdmodfed/internal/shredder"
	"xdmodfed/internal/warehouse"
)

func satelliteWithJobs(t testing.TB, name string, n int) *warehouse.DB {
	t.Helper()
	db := warehouse.Open(name)
	if _, err := jobs.Setup(db); err != nil {
		t.Fatal(err)
	}
	base := time.Date(2017, 1, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < n; i++ {
		rec := shredder.JobRecord{
			LocalJobID: int64(i + 1), User: fmt.Sprintf("u%d", i%5), Account: "acct",
			Resource: name + "-cluster", Queue: "batch", Nodes: 1, Cores: 8,
			Submit: base.Add(time.Duration(i) * time.Hour),
			Start:  base.Add(time.Duration(i)*time.Hour + 10*time.Minute),
			End:    base.Add(time.Duration(i)*time.Hour + 70*time.Minute),
		}
		row, err := jobs.FactFromRecord(rec, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := db.Insert(jobs.SchemaName, jobs.FactTable, row); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func TestRewriterRenamesSchema(t *testing.T) {
	rw := NewRewriter("siteA", Filter{})
	ev, ok := rw.Process(warehouse.Event{Kind: warehouse.EvInsert, Schema: "modw", Table: "jobfact", Row: []any{}})
	if !ok || ev.Schema != "fed_siteA" {
		t.Errorf("rename failed: %+v ok=%v", ev, ok)
	}
	if ev.Table != "jobfact" {
		t.Errorf("table changed: %q", ev.Table)
	}
}

func TestRewriterTableFilter(t *testing.T) {
	rw := NewRewriter("a", JobsOnlyFilter("jobfact"))
	if _, ok := rw.Process(warehouse.Event{Kind: warehouse.EvInsert, Schema: "s", Table: "user_profiles"}); ok {
		t.Error("non-jobs table must be filtered")
	}
	if _, ok := rw.Process(warehouse.Event{Kind: warehouse.EvInsert, Schema: "s", Table: "jobfact"}); !ok {
		t.Error("jobs table must pass")
	}
	def := jobs.Def()
	if _, ok := rw.Process(warehouse.Event{Kind: warehouse.EvCreateTable, Schema: "s", Table: "user_profiles", Def: &def}); ok {
		t.Error("DDL for filtered table must be dropped")
	}
}

func TestRewriterResourceFilter(t *testing.T) {
	def := jobs.Def()
	rw := NewRewriter("a", Filter{ExcludeResources: map[string]bool{"secret-cluster": true}})
	// DDL first so the rewriter learns the column layout.
	if _, ok := rw.Process(warehouse.Event{Kind: warehouse.EvCreateTable, Schema: "modw", Table: "jobfact", Def: &def}); !ok {
		t.Fatal("DDL should pass")
	}
	mkRow := func(resource string) []any {
		row := make([]any, len(def.Columns))
		for i, c := range def.Columns {
			switch c.Name {
			case "resource":
				row[i] = resource
			case "username":
				row[i] = "u"
			default:
				row[i] = nil
			}
		}
		return row
	}
	if _, ok := rw.Process(warehouse.Event{Kind: warehouse.EvInsert, Schema: "modw", Table: "jobfact", Row: mkRow("secret-cluster")}); ok {
		t.Error("excluded resource row must not replicate")
	}
	if _, ok := rw.Process(warehouse.Event{Kind: warehouse.EvInsert, Schema: "modw", Table: "jobfact", Row: mkRow("open-cluster")}); !ok {
		t.Error("other resources must replicate")
	}
	// Deletes are matched via Old values.
	if _, ok := rw.Process(warehouse.Event{Kind: warehouse.EvDelete, Schema: "modw", Table: "jobfact", Old: mkRow("secret-cluster")}); ok {
		t.Error("excluded resource delete must not replicate")
	}
}

func TestRewriterDropSchemaNotPropagated(t *testing.T) {
	rw := NewRewriter("a", Filter{})
	if _, ok := rw.Process(warehouse.Event{Kind: warehouse.EvDropSchema, Schema: "modw"}); ok {
		t.Error("schema drops must not reach the hub (hub doubles as backup)")
	}
}

func TestProcessBatchAdvancesPastFiltered(t *testing.T) {
	rw := NewRewriter("a", JobsOnlyFilter("jobfact"))
	evs := []warehouse.Event{
		{LSN: 5, Kind: warehouse.EvInsert, Schema: "s", Table: "other"},
		{LSN: 6, Kind: warehouse.EvInsert, Schema: "s", Table: "other"},
	}
	out, upTo := rw.ProcessBatch(evs)
	if len(out) != 0 || upTo != 6 {
		t.Errorf("out=%d upTo=%d, want 0,6", len(out), upTo)
	}
}

func TestFilterValidate(t *testing.T) {
	if err := (Filter{}).Validate(); err != nil {
		t.Error("zero filter must be valid")
	}
	if err := (Filter{IncludeTables: map[string]bool{}}).Validate(); err == nil {
		t.Error("empty include set must be rejected")
	}
}

func TestPumpReplicatesToHubSchema(t *testing.T) {
	sat := satelliteWithJobs(t, "ccr", 50)
	hub := warehouse.Open("hub")
	rw := NewRewriter("ccr", Filter{})
	pos, err := Pump(sat, hub, rw, 0)
	if err != nil {
		t.Fatal(err)
	}
	if pos != sat.Binlog().Last() {
		t.Errorf("pos = %d, want %d", pos, sat.Binlog().Last())
	}
	if got := hub.Count(HubSchema("ccr"), jobs.FactTable); got != 50 {
		t.Errorf("hub rows = %d, want 50", got)
	}
	// Raw data must be byte-identical (hub never alters replicated data).
	satTab, _ := sat.TableIn(jobs.SchemaName, jobs.FactTable)
	hubTab, _ := hub.TableIn(HubSchema("ccr"), jobs.FactTable)
	sat.View(func() error {
		satTab.Scan(func(r warehouse.Row) bool {
			hr, ok := hubTab.GetByKey(r.Get(jobs.ColResource), r.Get(jobs.ColJobID))
			if !ok {
				t.Errorf("row missing on hub: %v", r.Values())
				return false
			}
			if hr.Float(jobs.ColCPUHours) != r.Float(jobs.ColCPUHours) {
				t.Errorf("row altered on hub")
				return false
			}
			return true
		})
		return nil
	})
	// Incremental: new satellite rows pump from the saved position.
	rec := shredder.JobRecord{
		LocalJobID: 1000, User: "x", Account: "a", Resource: "ccr-cluster", Queue: "q",
		Nodes: 1, Cores: 1,
		Submit: time.Date(2017, 6, 1, 0, 0, 0, 0, time.UTC),
		Start:  time.Date(2017, 6, 1, 1, 0, 0, 0, time.UTC),
		End:    time.Date(2017, 6, 1, 2, 0, 0, 0, time.UTC),
	}
	row, _ := jobs.FactFromRecord(rec, nil)
	sat.Insert(jobs.SchemaName, jobs.FactTable, row)
	if _, err := Pump(sat, hub, rw, pos); err != nil {
		t.Fatal(err)
	}
	if got := hub.Count(HubSchema("ccr"), jobs.FactTable); got != 51 {
		t.Errorf("hub rows after increment = %d, want 51", got)
	}
}

func TestLooseDumpLoad(t *testing.T) {
	sat := satelliteWithJobs(t, "remote", 30)
	var buf bytes.Buffer
	if err := Dump(sat, []string{jobs.SchemaName}, &buf); err != nil {
		t.Fatal(err)
	}
	hub := warehouse.Open("hub")
	loaded, err := Load(hub, "remote", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := hub.Count(HubSchema("remote"), jobs.FactTable); got != 30 {
		t.Errorf("hub rows = %d, want 30", got)
	}
	found := false
	for _, tn := range loaded {
		if tn == jobs.FactTable {
			found = true
		}
	}
	if !found {
		t.Errorf("Load reported tables %v, want %s included", loaded, jobs.FactTable)
	}
	// Re-shipping a newer dump supersedes the old contents.
	rec := shredder.JobRecord{
		LocalJobID: 99, User: "x", Account: "a", Resource: "remote-cluster", Queue: "q",
		Nodes: 1, Cores: 1,
		Submit: time.Date(2017, 6, 1, 0, 0, 0, 0, time.UTC),
		Start:  time.Date(2017, 6, 1, 1, 0, 0, 0, time.UTC),
		End:    time.Date(2017, 6, 1, 2, 0, 0, 0, time.UTC),
	}
	row, _ := jobs.FactFromRecord(rec, nil)
	sat.Insert(jobs.SchemaName, jobs.FactTable, row)
	var buf2 bytes.Buffer
	Dump(sat, []string{jobs.SchemaName}, &buf2)
	if _, err := Load(hub, "remote", &buf2); err != nil {
		t.Fatal(err)
	}
	if got := hub.Count(HubSchema("remote"), jobs.FactTable); got != 31 {
		t.Errorf("hub rows after re-ship = %d, want 31", got)
	}
}

func TestPositionStore(t *testing.T) {
	hub := warehouse.Open("hub")
	ps, err := NewPositionStore(hub)
	if err != nil {
		t.Fatal(err)
	}
	if ps.Get("a") != 0 {
		t.Error("unknown instance should be at 0")
	}
	if err := ps.Set("a", 42); err != nil {
		t.Fatal(err)
	}
	if err := ps.Set("b", 7); err != nil {
		t.Fatal(err)
	}
	if err := ps.Set("a", 50); err != nil {
		t.Fatal(err)
	}
	if ps.Get("a") != 50 || ps.Get("b") != 7 {
		t.Errorf("positions: a=%d b=%d", ps.Get("a"), ps.Get("b"))
	}
	inst := ps.Instances()
	if len(inst) != 2 || inst[0] != "a" || inst[1] != "b" {
		t.Errorf("instances = %v", inst)
	}
}

// testSink applies into a hub DB and records positions, mimicking what
// the federation core wires up.
type testSink struct {
	hub *warehouse.DB
	ps  *PositionStore
	mu  sync.Mutex
}

func (s *testSink) Resume(instance string) (uint64, error) {
	return s.ps.Get(instance), nil
}

func (s *testSink) ApplyBatch(instance string, upTo uint64, events []warehouse.Event) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, ev := range events {
		if err := s.hub.Apply(ev); err != nil {
			return err
		}
	}
	return s.ps.Set(instance, upTo)
}

func newTestSink(t testing.TB) (*testSink, *warehouse.DB) {
	t.Helper()
	hub := warehouse.Open("hub")
	ps, err := NewPositionStore(hub)
	if err != nil {
		t.Fatal(err)
	}
	return &testSink{hub: hub, ps: ps}, hub
}

func TestTightReplicationOverTCP(t *testing.T) {
	sat := satelliteWithJobs(t, "ccr", 40)
	sink, hub := newTestSink(t)
	recv := &Receiver{Version: "8.0.0", Sink: sink}
	addr, err := recv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sender := &Sender{Instance: "ccr", Version: "8.0.0", DB: sat, Rewriter: NewRewriter("ccr", Filter{})}
	done := make(chan error, 1)
	go func() { done <- sender.Run(ctx, addr) }()

	waitFor(t, func() bool { return hub.Count(HubSchema("ccr"), jobs.FactTable) == 40 })

	// Live updates flow while connected.
	rec := shredder.JobRecord{
		LocalJobID: 500, User: "x", Account: "a", Resource: "ccr-cluster", Queue: "q",
		Nodes: 1, Cores: 2,
		Submit: time.Date(2017, 7, 1, 0, 0, 0, 0, time.UTC),
		Start:  time.Date(2017, 7, 1, 1, 0, 0, 0, time.UTC),
		End:    time.Date(2017, 7, 1, 3, 0, 0, 0, time.UTC),
	}
	row, _ := jobs.FactFromRecord(rec, nil)
	sat.Insert(jobs.SchemaName, jobs.FactTable, row)
	waitFor(t, func() bool { return hub.Count(HubSchema("ccr"), jobs.FactTable) == 41 })

	cancel()
	if err := <-done; err != nil {
		t.Errorf("sender returned %v", err)
	}
	if st := sender.Stats(); st.Position != sat.Binlog().Last() || st.SentEvents == 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestTightReplicationResume(t *testing.T) {
	sat := satelliteWithJobs(t, "ccr", 10)
	sink, hub := newTestSink(t)
	recv := &Receiver{Version: "v1", Sink: sink}
	addr, err := recv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()

	run := func() {
		ctx, cancel := context.WithCancel(context.Background())
		sender := &Sender{Instance: "ccr", Version: "v1", DB: sat, Rewriter: NewRewriter("ccr", Filter{})}
		done := make(chan error, 1)
		go func() { done <- sender.Run(ctx, addr) }()
		waitFor(t, func() bool { return sink.ps.Get("ccr") == sat.Binlog().Last() })
		cancel()
		<-done
	}
	run()
	countAfterFirst := hub.Count(HubSchema("ccr"), jobs.FactTable)
	if countAfterFirst != 10 {
		t.Fatalf("first session replicated %d rows", countAfterFirst)
	}
	// New rows while disconnected...
	rec := shredder.JobRecord{
		LocalJobID: 900, User: "x", Account: "a", Resource: "ccr-cluster", Queue: "q",
		Nodes: 1, Cores: 2,
		Submit: time.Date(2017, 8, 1, 0, 0, 0, 0, time.UTC),
		Start:  time.Date(2017, 8, 1, 1, 0, 0, 0, time.UTC),
		End:    time.Date(2017, 8, 1, 2, 0, 0, 0, time.UTC),
	}
	row, _ := jobs.FactFromRecord(rec, nil)
	sat.Insert(jobs.SchemaName, jobs.FactTable, row)
	// ...arrive after reconnect, without duplicating older rows.
	run()
	if got := hub.Count(HubSchema("ccr"), jobs.FactTable); got != 11 {
		t.Errorf("rows after resume = %d, want 11", got)
	}
}

func TestVersionMismatchRejected(t *testing.T) {
	sat := satelliteWithJobs(t, "ccr", 1)
	sink, _ := newTestSink(t)
	recv := &Receiver{Version: "8.0.0", Sink: sink}
	addr, err := recv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()

	sender := &Sender{Instance: "ccr", Version: "7.5.0", DB: sat, Rewriter: NewRewriter("ccr", Filter{})}
	err = sender.Run(context.Background(), addr)
	if !errors.Is(err, ErrHandshakeRejected) {
		t.Errorf("got %v, want handshake rejection", err)
	}
}

func TestAuthorizeRejectsUnknownInstance(t *testing.T) {
	sat := satelliteWithJobs(t, "rogue", 1)
	sink, _ := newTestSink(t)
	recv := &Receiver{
		Version: "v1", Sink: sink,
		Authorize: func(instance string) error {
			if instance != "trusted" {
				return fmt.Errorf("instance %q is not a federation member", instance)
			}
			return nil
		},
	}
	addr, err := recv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()
	sender := &Sender{Instance: "rogue", Version: "v1", DB: sat, Rewriter: NewRewriter("rogue", Filter{})}
	if err := sender.Run(context.Background(), addr); !errors.Is(err, ErrHandshakeRejected) {
		t.Errorf("got %v, want handshake rejection", err)
	}
}

func TestRunWithRetryStopsOnRejection(t *testing.T) {
	sat := satelliteWithJobs(t, "ccr", 1)
	sink, _ := newTestSink(t)
	recv := &Receiver{Version: "v2", Sink: sink}
	addr, _ := recv.Listen("127.0.0.1:0")
	defer recv.Close()
	sender := &Sender{Instance: "ccr", Version: "v1", DB: sat, Rewriter: NewRewriter("ccr", Filter{})}
	errc := make(chan error, 1)
	go func() { errc <- sender.RunWithRetry(context.Background(), addr, time.Millisecond) }()
	select {
	case err := <-errc:
		if !errors.Is(err, ErrHandshakeRejected) {
			t.Errorf("got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("RunWithRetry kept retrying a permanent rejection")
	}
}

func TestMultiHubFanOut(t *testing.T) {
	sat := satelliteWithJobs(t, "ccr", 20)
	sinkA, hubA := newTestSink(t)
	sinkB, hubB := newTestSink(t)
	recvA := &Receiver{Version: "v1", Sink: sinkA}
	recvB := &Receiver{Version: "v1", Sink: sinkB}
	addrA, _ := recvA.Listen("127.0.0.1:0")
	addrB, _ := recvB.Listen("127.0.0.1:0")
	defer recvA.Close()
	defer recvB.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for _, addr := range []string{addrA, addrB} {
		s := &Sender{Instance: "ccr", Version: "v1", DB: sat, Rewriter: NewRewriter("ccr", Filter{})}
		go s.Run(ctx, addr)
	}
	waitFor(t, func() bool {
		return hubA.Count(HubSchema("ccr"), jobs.FactTable) == 20 &&
			hubB.Count(HubSchema("ccr"), jobs.FactTable) == 20
	})
}

func waitFor(t testing.TB, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("condition not reached within deadline")
}

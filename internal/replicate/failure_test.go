package replicate

import (
	"context"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"xdmodfed/internal/faults"
	"xdmodfed/internal/realm/jobs"
	"xdmodfed/internal/shredder"
)

// chaosProxy forwards TCP to a backend but kills every connection
// after passing a bounded number of bytes, forcing senders to
// reconnect and resume mid-stream.
type chaosProxy struct {
	ln      net.Listener
	backend string
	limit   int
	wg      sync.WaitGroup
	mu      sync.Mutex
	drops   int
	closed  bool
}

func newChaosProxy(t *testing.T, backend string, byteLimit int) *chaosProxy {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &chaosProxy{ln: ln, backend: backend, limit: byteLimit}
	p.wg.Add(1)
	go p.accept()
	return p
}

func (p *chaosProxy) Addr() string { return p.ln.Addr().String() }

func (p *chaosProxy) Drops() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.drops
}

func (p *chaosProxy) accept() {
	defer p.wg.Done()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			p.serve(conn)
		}()
	}
}

func (p *chaosProxy) serve(client net.Conn) {
	defer client.Close()
	server, err := net.Dial("tcp", p.backend)
	if err != nil {
		return
	}
	defer server.Close()
	done := make(chan struct{}, 2)
	// Client -> server direction is byte-limited; hitting the limit
	// kills both sides of the proxied connection.
	go func() {
		io.CopyN(server, client, int64(p.limit))
		p.mu.Lock()
		if !p.closed {
			p.drops++
		}
		p.mu.Unlock()
		client.Close()
		server.Close()
		done <- struct{}{}
	}()
	go func() {
		io.Copy(client, server)
		done <- struct{}{}
	}()
	<-done
}

func (p *chaosProxy) Close() {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	p.ln.Close()
	p.wg.Wait()
}

// TestReplicationSurvivesConnectionDrops: a sender streaming through a
// connection-killing proxy must still deliver every row exactly once,
// by resuming from the hub's durable commit position on each
// reconnect.
func TestReplicationSurvivesConnectionDrops(t *testing.T) {
	const rows = 300
	sat := satelliteWithJobs(t, "ccr", rows)
	sink, hub := newTestSink(t)
	recv := &Receiver{Version: "v", Sink: sink}
	hubAddr, err := recv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()

	// Kill connections every ~64 KiB so the stream needs several
	// sessions to complete.
	proxy := newChaosProxy(t, hubAddr, 64*1024)
	defer proxy.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	sender := &Sender{
		Instance: "ccr", Version: "v", DB: sat,
		Rewriter:  NewRewriter("ccr", Filter{}),
		BatchSize: 16, // small batches so drops land mid-stream
	}
	go sender.RunWithRetry(ctx, proxy.Addr(), time.Millisecond)

	waitFor(t, func() bool {
		return hub.Count(HubSchema("ccr"), jobs.FactTable) == rows
	})
	if proxy.Drops() == 0 {
		t.Error("proxy never dropped a connection; test exercised nothing")
	}
	// Exactly-once: no duplicated rows despite replays (the hub resumes
	// from its committed position, and DDL replay is idempotent).
	if got := hub.Count(HubSchema("ccr"), jobs.FactTable); got != rows {
		t.Errorf("rows = %d, want %d", got, rows)
	}
	t.Logf("stream survived %d connection drops", proxy.Drops())
}

// TestReplicationExactlyOnceUnderInjectedFaults drives the seeded
// fault-injection layer instead of ad-hoc byte-limited proxying: every
// hub-side read and write can drop the connection mid-frame, and the
// stream must still deliver every row exactly once by resuming from
// the hub's durable commit position.
func TestReplicationExactlyOnceUnderInjectedFaults(t *testing.T) {
	const rows = 300
	reg := faults.New(7)
	reg.Enable(faults.ConnReadDrop, 0.05)
	reg.Enable(faults.ConnWriteDrop, 0.05)

	sat := satelliteWithJobs(t, "ccr", rows)
	sink, hub := newTestSink(t)
	recv := &Receiver{Version: "v", Sink: sink, Faults: reg}
	hubAddr, err := recv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	sender := &Sender{
		Instance: "ccr", Version: "v", DB: sat,
		Rewriter:  NewRewriter("ccr", Filter{}),
		BatchSize: 8, // small batches so injected drops land mid-stream
	}
	go sender.RunWithRetry(ctx, hubAddr, time.Millisecond)

	deadline := time.Now().Add(30 * time.Second)
	for hub.Count(HubSchema("ccr"), jobs.FactTable) != rows {
		if time.Now().After(deadline) {
			t.Fatalf("stream never converged: %d of %d rows after %d injected faults",
				hub.Count(HubSchema("ccr"), jobs.FactTable), rows, reg.Injected())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if reg.Injected() == 0 {
		t.Error("no faults injected; test exercised nothing")
	}
	// Exactly-once: resumption from the commit position never replays a
	// row into the fact table twice.
	if got := hub.Count(HubSchema("ccr"), jobs.FactTable); got != rows {
		t.Errorf("rows = %d, want %d", got, rows)
	}
	t.Logf("stream converged across %d injected connection faults", reg.Injected())
}

// TestConcurrentIngestReplicateQuery: writers, a replication stream,
// and readers share one satellite concurrently without corruption.
func TestConcurrentIngestReplicateQuery(t *testing.T) {
	sat := satelliteWithJobs(t, "ccr", 10)
	sink, hub := newTestSink(t)
	recv := &Receiver{Version: "v", Sink: sink}
	addr, err := recv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sender := &Sender{Instance: "ccr", Version: "v", DB: sat, Rewriter: NewRewriter("ccr", Filter{})}
	go sender.Run(ctx, addr)

	const writers, perWriter = 4, 50
	var wg sync.WaitGroup
	base := time.Date(2017, 9, 1, 0, 0, 0, 0, time.UTC)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				rec := shredder.JobRecord{
					LocalJobID: int64(1000 + w*1000 + i), User: "u", Account: "a",
					Resource: "ccr-cluster", Queue: "q", Nodes: 1, Cores: 2,
					Submit: base, Start: base.Add(time.Minute), End: base.Add(time.Hour),
				}
				row, err := jobs.FactFromRecord(rec, nil)
				if err != nil {
					t.Error(err)
					return
				}
				if err := sat.Insert(jobs.SchemaName, jobs.FactTable, row); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	// Concurrent readers.
	stop := make(chan struct{})
	go func() {
		tab, _ := sat.TableIn(jobs.SchemaName, jobs.FactTable)
		for {
			select {
			case <-stop:
				return
			default:
			}
			sat.View(func() error {
				tab.CountWhere(nil)
				return nil
			})
		}
	}()
	wg.Wait()
	close(stop)

	total := 10 + writers*perWriter
	waitFor(t, func() bool {
		return hub.Count(HubSchema("ccr"), jobs.FactTable) == total
	})
}

package replicate

import (
	"fmt"
	"sort"
	"time"

	"xdmodfed/internal/aggregate"
	"xdmodfed/internal/realm"
	"xdmodfed/internal/warehouse"
)

// Aggregation pushdown, satellite side: instead of shipping a realm's
// raw fact events, the sender drains them into a cumulative per-realm
// fold (aggregate.DeltaFolder — the same fold a hub rebuild runs) and
// flushes mergeable partial-aggregate deltas on an interval. The hub
// stores the bins in per-member pagg tables and rebuilds its
// aggregation tables from them, so hub CPU and wire volume scale with
// the number of touched aggregation bins, not the number of facts.
//
// Crash safety is reset-on-connect: every (re)connection re-folds the
// realm's live fact table under a consistent snapshot and ships a
// Reset delta, so a sender killed mid-flush simply converges again
// from scratch — no delta-level positions, no replay protocol. The
// same reset path absorbs non-additive fact mutations (update, delete,
// truncate, bulk load), which a cumulative fold cannot express.
//
// A PushdownFolder is owned by exactly one Sender.Run goroutine; it is
// not safe for concurrent use.

// DefaultPushdownFlushInterval paces incremental delta flushes when
// the configuration does not say otherwise.
const DefaultPushdownFlushInterval = 2 * time.Second

// pushRealm is one realm's pushdown state.
type pushRealm struct {
	info realm.Info
	df   *aggregate.DeltaFolder
	// needReset requests a fresh snapshot fold at the next flush:
	// set at every (re)connect and on any non-additive fact mutation.
	needReset bool
}

// PushdownFolder folds a route's pushdown realms. The replication
// filter must be the same one the route's Rewriter applies, so the
// fold covers exactly the facts that fact replication would ship.
type PushdownFolder struct {
	eng      *aggregate.Engine
	filter   Filter
	interval time.Duration

	realms    map[string]*pushRealm // keyed by fact table name
	order     []*pushRealm          // flush order, sorted by realm name
	lastFlush time.Time
}

// NewPushdownFolder builds a folder for the given realms. Every realm
// must be mergeable (aggregate.MergeableRealm); callers route
// unmergeable realms to fact replication instead.
func NewPushdownFolder(eng *aggregate.Engine, infos []realm.Info, filter Filter, flushInterval time.Duration) (*PushdownFolder, error) {
	if len(infos) == 0 {
		return nil, fmt.Errorf("replicate: pushdown folder needs at least one realm")
	}
	if flushInterval <= 0 {
		flushInterval = DefaultPushdownFlushInterval
	}
	if filter.ResourceColumn == "" {
		filter.ResourceColumn = "resource"
	}
	p := &PushdownFolder{eng: eng, filter: filter, interval: flushInterval,
		realms: make(map[string]*pushRealm, len(infos))}
	for _, info := range infos {
		df, err := eng.NewDeltaFolder(info)
		if err != nil {
			return nil, err
		}
		if _, dup := p.realms[info.FactTable]; dup {
			return nil, fmt.Errorf("replicate: pushdown realms %q share fact table %q", info.Name, info.FactTable)
		}
		pr := &pushRealm{info: info, df: df}
		p.realms[info.FactTable] = pr
		p.order = append(p.order, pr)
	}
	sort.Slice(p.order, func(i, j int) bool { return p.order[i].info.Name < p.order[j].info.Name })
	return p, nil
}

// Realms returns the pushdown realm names, sorted (the hello offer).
func (p *PushdownFolder) Realms() []string {
	out := make([]string, len(p.order))
	for i, pr := range p.order {
		out[i] = pr.info.Name
	}
	return out
}

// Digest returns the satellite's aggregation-levels digest (the hub
// grants pushdown only on a match — bins rendered with different
// levels would not merge meaningfully).
func (p *PushdownFolder) Digest() string { return p.eng.LevelsDigest() }

// PrepareConnect marks every realm for a fresh snapshot fold. The
// sender calls it once per granted connection, before the first flush:
// the resulting Reset deltas re-establish the hub's bins from scratch,
// which is what makes a kill/restart mid-flush convergent.
func (p *PushdownFolder) PrepareConnect() {
	for _, pr := range p.order {
		pr.needReset = true
	}
	p.lastFlush = time.Time{}
}

// Consume filters a rewritten event batch before it is sent: fact
// events of pushdown realms are folded (inserts) or absorbed into a
// pending reset (anything non-additive) instead of shipping; all other
// events pass through for raw replication. upTo is the batch's binlog
// position — after Consume, every realm's fold covers it. Inserts at
// or below a realm's covered position are dropped without folding
// (they are already in the snapshot fold).
func (p *PushdownFolder) Consume(events []warehouse.Event, upTo uint64) ([]warehouse.Event, error) {
	out := events[:0]
	var pending *pushRealm
	var rows [][]any
	flushPending := func() error {
		if pending == nil || len(rows) == 0 {
			return nil
		}
		err := pending.df.FoldRows(rows)
		rows = rows[:0]
		return err
	}
	for _, ev := range events {
		pr := p.realms[ev.Table]
		if pr == nil {
			out = append(out, ev)
			continue
		}
		switch ev.Kind {
		case warehouse.EvCreateTable:
			// The hub never materializes a pushdown realm's raw fact
			// table; its absence (vs. the pagg tables' presence) is how
			// the hub tells the member's mode per realm.
			continue
		case warehouse.EvInsert:
			if pr.needReset || ev.LSN <= pr.df.Covered() {
				// Already covered: by the upcoming snapshot fold (the
				// event is committed, so the snapshot will contain it) or
				// by the one that ran.
				continue
			}
			if pending != pr {
				if err := flushPending(); err != nil {
					return nil, err
				}
				pending = pr
			}
			rows = append(rows, ev.Row)
		default:
			// Update, delete, truncate, bulk load: not expressible as a
			// cumulative fold — re-snapshot the table at the next flush.
			if err := flushPending(); err != nil {
				return nil, err
			}
			pending = nil
			pr.needReset = true
		}
	}
	if err := flushPending(); err != nil {
		return nil, err
	}
	for _, pr := range p.order {
		pr.df.SetCovered(upTo)
	}
	return out, nil
}

// Due reports whether a flush should run now: immediately when any
// realm needs a reset, on the flush interval when bins are dirty.
func (p *PushdownFolder) Due(now time.Time) bool {
	for _, pr := range p.order {
		if pr.needReset {
			return true
		}
		if pr.df.Dirty() && now.Sub(p.lastFlush) >= p.interval {
			return true
		}
	}
	return false
}

// Flush produces the deltas to ship: realms in name order, pending
// resets performed first (snapshot fold of the live fact table under
// the route's resource filter). Returns the deltas and the total bin
// count. Realms with nothing to say are skipped.
func (p *PushdownFolder) Flush(now time.Time) ([]aggregate.Delta, int, error) {
	var deltas []aggregate.Delta
	rows := 0
	for _, pr := range p.order {
		if pr.needReset {
			if _, err := pr.df.Reset(p.filter.ExcludeResources, p.filter.ResourceColumn); err != nil {
				return nil, 0, err
			}
			pr.needReset = false
		}
		d, ok := pr.df.Flush()
		if !ok {
			continue
		}
		deltas = append(deltas, d)
		rows += d.Rows()
	}
	p.lastFlush = now
	return deltas, rows, nil
}

// Covered returns the smallest covered position across realms — the
// conservative "deltas supersede facts up to here" the sender reports.
func (p *PushdownFolder) Covered() uint64 {
	var c uint64
	for i, pr := range p.order {
		if i == 0 || pr.df.Covered() < c {
			c = pr.df.Covered()
		}
	}
	return c
}

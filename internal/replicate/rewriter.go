// Package replicate implements the database replication layer of
// XDMoD federation — the role Continuent's Tungsten Replicator plays
// in the paper (§II-C1): it "reads binary logs on the XDMoD instance
// databases, copying their tables into new, uniquely named schemas
// (one schema per XDMoD instance) on the XDMoD federation hub's
// database", supporting "renaming the data schema during transfer, and
// selective replication of data from satellite instances".
//
// Two coupling modes are provided (paper §II-C2): tight federation
// streams binlog events live over TCP; loose federation ships database
// dumps that the hub batch-loads. Both land satellite data verbatim in
// per-instance hub schemas; the hub never alters replicated raw data.
package replicate

import (
	"fmt"

	"xdmodfed/internal/warehouse"
)

// HubSchemaPrefix prefixes per-instance schemas on the hub: satellite
// "ccr" lands in hub schema "fed_ccr".
const HubSchemaPrefix = "fed_"

// HubSchema names the hub schema for an instance.
func HubSchema(instance string) string { return HubSchemaPrefix + instance }

// Filter selects which binlog events replicate. The zero Filter passes
// everything.
type Filter struct {
	// IncludeTables, when non-nil, allows only these table names (the
	// paper's initial release replicates only the HPC Jobs realm and
	// excludes user-profile data).
	IncludeTables map[string]bool
	// ExcludeResources, when non-nil, drops row events whose fact row
	// belongs to one of these resources (paper §II-C4: selectively
	// exclude sensitive resources from federation).
	ExcludeResources map[string]bool
	// ResourceColumn names the column checked by ExcludeResources
	// (default "resource").
	ResourceColumn string
}

// Rewriter statefully transforms a satellite's binlog event stream for
// application on a hub: it renames schemas to the instance's hub
// schema and applies the filter. It tracks table definitions from DDL
// events so row-level resource filtering can find the resource column
// in positional rows.
type Rewriter struct {
	instance string
	filter   Filter
	resCol   map[string]int // "schema.table" -> resource column index (-1 none)
}

// NewRewriter creates a rewriter for one satellite instance.
func NewRewriter(instance string, f Filter) *Rewriter {
	if f.ResourceColumn == "" {
		f.ResourceColumn = "resource"
	}
	return &Rewriter{instance: instance, filter: f, resCol: make(map[string]int)}
}

// Process transforms one event. It returns the rewritten event and
// whether it should be sent; filtered events return false. DDL events
// for filtered tables are dropped; schema DDL is passed (collapsed to
// the single hub schema, which the applier creates idempotently).
func (rw *Rewriter) Process(ev warehouse.Event) (warehouse.Event, bool) {
	key := ev.Schema + "." + ev.Table
	switch ev.Kind {
	case warehouse.EvCreateSchema, warehouse.EvDropSchema:
		// All satellite schemas collapse into one hub schema; emit a
		// create for it (drops are not propagated — the hub retains
		// replicated data as backup, paper §II-E4).
		if ev.Kind == warehouse.EvDropSchema {
			return warehouse.Event{}, false
		}
		ev.Schema = HubSchema(rw.instance)
		return ev, true
	case warehouse.EvCreateTable:
		if ev.Def != nil {
			idx := -1
			for i, c := range ev.Def.Columns {
				if c.Name == rw.filter.ResourceColumn {
					idx = i
					break
				}
			}
			rw.resCol[key] = idx
		}
		if !rw.tableAllowed(ev.Table) {
			return warehouse.Event{}, false
		}
		ev.Schema = HubSchema(rw.instance)
		return ev, true
	case warehouse.EvLoad:
		// A bulk load replaces the whole table: the resource filter must
		// inspect the columnar payload, not Row/Old (which are nil).
		if !rw.tableAllowed(ev.Table) {
			return warehouse.Event{}, false
		}
		if rw.filter.ExcludeResources != nil && ev.Cols != nil {
			ev.Cols = rw.filterLoad(ev.Cols)
		}
		ev.Schema = HubSchema(rw.instance)
		return ev, true
	}
	if !rw.tableAllowed(ev.Table) {
		return warehouse.Event{}, false
	}
	if rw.filter.ExcludeResources != nil {
		if idx, ok := rw.resCol[key]; ok && idx >= 0 {
			row := ev.Row
			if row == nil {
				row = ev.Old
			}
			if idx < len(row) {
				if res, ok := row[idx].(string); ok && rw.filter.ExcludeResources[res] {
					return warehouse.Event{}, false
				}
			}
		}
	}
	ev.Schema = HubSchema(rw.instance)
	return ev, true
}

// filterLoad drops excluded-resource rows from a bulk-load payload.
// The input is never mutated (it may be shared with the source binlog):
// when rows must go, a filtered copy is built; otherwise the payload
// passes through untouched. The resource column is located by name in
// the payload itself, so reordered upstream definitions filter
// correctly.
func (rw *Rewriter) filterLoad(cd *warehouse.ColumnData) *warehouse.ColumnData {
	ri := -1
	for i, n := range cd.Names {
		if n == rw.filter.ResourceColumn {
			ri = i
			break
		}
	}
	if ri < 0 || cd.Cols[ri].Strs == nil {
		return cd
	}
	res := cd.Cols[ri].Strs
	keep := make([]int, 0, cd.Rows)
	for pos := 0; pos < cd.Rows; pos++ {
		if pos < len(res) && rw.filter.ExcludeResources[res[pos]] {
			continue
		}
		keep = append(keep, pos)
	}
	if len(keep) == cd.Rows {
		return cd
	}
	out := &warehouse.ColumnData{
		Names: append([]string(nil), cd.Names...),
		Cols:  make([]warehouse.ColumnVector, len(cd.Cols)),
		Rows:  len(keep),
	}
	for i := range cd.Cols {
		src := &cd.Cols[i]
		out.Cols[i] = warehouse.ColumnVector{
			Type:   src.Type,
			Ints:   pickRows(src.Ints, keep),
			Floats: pickRows(src.Floats, keep),
			Strs:   pickRows(src.Strs, keep),
			Bools:  pickRows(src.Bools, keep),
			Times:  pickRows(src.Times, keep),
			Nulls:  pickRows(src.Nulls, keep),
		}
	}
	return out
}

// pickRows gathers the kept positions of one vector (nil in, nil out).
func pickRows[T any](src []T, keep []int) []T {
	if src == nil {
		return nil
	}
	out := make([]T, 0, len(keep))
	for _, pos := range keep {
		if pos < len(src) {
			out = append(out, src[pos])
		}
	}
	return out
}

func (rw *Rewriter) tableAllowed(table string) bool {
	if rw.filter.IncludeTables == nil {
		return true
	}
	return rw.filter.IncludeTables[table]
}

// ProcessBatch rewrites a slice of events, returning the survivors and
// the highest input LSN seen (so positions advance past filtered
// events too).
func (rw *Rewriter) ProcessBatch(evs []warehouse.Event) (out []warehouse.Event, upTo uint64) {
	for _, ev := range evs {
		if ev.LSN > upTo {
			upTo = ev.LSN
		}
		if r, ok := rw.Process(ev); ok {
			out = append(out, r)
		}
	}
	return out, upTo
}

// JobsOnlyFilter returns the paper's initial-release filter: only the
// HPC Jobs realm fact table replicates.
func JobsOnlyFilter(jobsFactTable string) Filter {
	return Filter{IncludeTables: map[string]bool{jobsFactTable: true}}
}

// Validate checks filter consistency.
func (f Filter) Validate() error {
	if f.IncludeTables != nil && len(f.IncludeTables) == 0 {
		return fmt.Errorf("replicate: filter includes no tables; nothing would replicate")
	}
	return nil
}

// Package replicate implements the database replication layer of
// XDMoD federation — the role Continuent's Tungsten Replicator plays
// in the paper (§II-C1): it "reads binary logs on the XDMoD instance
// databases, copying their tables into new, uniquely named schemas
// (one schema per XDMoD instance) on the XDMoD federation hub's
// database", supporting "renaming the data schema during transfer, and
// selective replication of data from satellite instances".
//
// Two coupling modes are provided (paper §II-C2): tight federation
// streams binlog events live over TCP; loose federation ships database
// dumps that the hub batch-loads. Both land satellite data verbatim in
// per-instance hub schemas; the hub never alters replicated raw data.
package replicate

import (
	"fmt"

	"xdmodfed/internal/warehouse"
)

// HubSchemaPrefix prefixes per-instance schemas on the hub: satellite
// "ccr" lands in hub schema "fed_ccr".
const HubSchemaPrefix = "fed_"

// HubSchema names the hub schema for an instance.
func HubSchema(instance string) string { return HubSchemaPrefix + instance }

// Filter selects which binlog events replicate. The zero Filter passes
// everything.
type Filter struct {
	// IncludeTables, when non-nil, allows only these table names (the
	// paper's initial release replicates only the HPC Jobs realm and
	// excludes user-profile data).
	IncludeTables map[string]bool
	// ExcludeResources, when non-nil, drops row events whose fact row
	// belongs to one of these resources (paper §II-C4: selectively
	// exclude sensitive resources from federation).
	ExcludeResources map[string]bool
	// ResourceColumn names the column checked by ExcludeResources
	// (default "resource").
	ResourceColumn string
}

// Rewriter statefully transforms a satellite's binlog event stream for
// application on a hub: it renames schemas to the instance's hub
// schema and applies the filter. It tracks table definitions from DDL
// events so row-level resource filtering can find the resource column
// in positional rows.
type Rewriter struct {
	instance string
	filter   Filter
	resCol   map[string]int // "schema.table" -> resource column index (-1 none)
}

// NewRewriter creates a rewriter for one satellite instance.
func NewRewriter(instance string, f Filter) *Rewriter {
	if f.ResourceColumn == "" {
		f.ResourceColumn = "resource"
	}
	return &Rewriter{instance: instance, filter: f, resCol: make(map[string]int)}
}

// Process transforms one event. It returns the rewritten event and
// whether it should be sent; filtered events return false. DDL events
// for filtered tables are dropped; schema DDL is passed (collapsed to
// the single hub schema, which the applier creates idempotently).
func (rw *Rewriter) Process(ev warehouse.Event) (warehouse.Event, bool) {
	key := ev.Schema + "." + ev.Table
	switch ev.Kind {
	case warehouse.EvCreateSchema, warehouse.EvDropSchema:
		// All satellite schemas collapse into one hub schema; emit a
		// create for it (drops are not propagated — the hub retains
		// replicated data as backup, paper §II-E4).
		if ev.Kind == warehouse.EvDropSchema {
			return warehouse.Event{}, false
		}
		ev.Schema = HubSchema(rw.instance)
		return ev, true
	case warehouse.EvCreateTable:
		if ev.Def != nil {
			idx := -1
			for i, c := range ev.Def.Columns {
				if c.Name == rw.filter.ResourceColumn {
					idx = i
					break
				}
			}
			rw.resCol[key] = idx
		}
		if !rw.tableAllowed(ev.Table) {
			return warehouse.Event{}, false
		}
		ev.Schema = HubSchema(rw.instance)
		return ev, true
	}
	if !rw.tableAllowed(ev.Table) {
		return warehouse.Event{}, false
	}
	if rw.filter.ExcludeResources != nil {
		if idx, ok := rw.resCol[key]; ok && idx >= 0 {
			row := ev.Row
			if row == nil {
				row = ev.Old
			}
			if idx < len(row) {
				if res, ok := row[idx].(string); ok && rw.filter.ExcludeResources[res] {
					return warehouse.Event{}, false
				}
			}
		}
	}
	ev.Schema = HubSchema(rw.instance)
	return ev, true
}

func (rw *Rewriter) tableAllowed(table string) bool {
	if rw.filter.IncludeTables == nil {
		return true
	}
	return rw.filter.IncludeTables[table]
}

// ProcessBatch rewrites a slice of events, returning the survivors and
// the highest input LSN seen (so positions advance past filtered
// events too).
func (rw *Rewriter) ProcessBatch(evs []warehouse.Event) (out []warehouse.Event, upTo uint64) {
	for _, ev := range evs {
		if ev.LSN > upTo {
			upTo = ev.LSN
		}
		if r, ok := rw.Process(ev); ok {
			out = append(out, r)
		}
	}
	return out, upTo
}

// JobsOnlyFilter returns the paper's initial-release filter: only the
// HPC Jobs realm fact table replicates.
func JobsOnlyFilter(jobsFactTable string) Filter {
	return Filter{IncludeTables: map[string]bool{jobsFactTable: true}}
}

// Validate checks filter consistency.
func (f Filter) Validate() error {
	if f.IncludeTables != nil && len(f.IncludeTables) == 0 {
		return fmt.Errorf("replicate: filter includes no tables; nothing would replicate")
	}
	return nil
}

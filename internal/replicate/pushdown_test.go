package replicate

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"xdmodfed/internal/aggregate"
	"xdmodfed/internal/realm"
	"xdmodfed/internal/realm/jobs"
	"xdmodfed/internal/shredder"
	"xdmodfed/internal/warehouse"
)

// pushTestSink extends testSink with the PushdownSink surface,
// recording negotiations and applied deltas. negotiate defaults to
// "grant everything" when nil.
type pushTestSink struct {
	*testSink
	negotiate func(req PushdownRequest) error

	pmu        sync.Mutex
	negotiated []PushdownRequest
	deltas     []aggregate.Delta
	covered    uint64
}

func (s *pushTestSink) NegotiatePushdown(instance string, req PushdownRequest) error {
	s.pmu.Lock()
	s.negotiated = append(s.negotiated, req)
	s.pmu.Unlock()
	if s.negotiate != nil {
		return s.negotiate(req)
	}
	return nil
}

func (s *pushTestSink) ApplyDeltas(ctx context.Context, instance string, upTo uint64, deltas []aggregate.Delta) error {
	s.pmu.Lock()
	defer s.pmu.Unlock()
	s.deltas = append(s.deltas, deltas...)
	for _, d := range deltas {
		if d.CoveredLSN > s.covered {
			s.covered = d.CoveredLSN
		}
	}
	return nil
}

func (s *pushTestSink) coveredLSN() uint64 {
	s.pmu.Lock()
	defer s.pmu.Unlock()
	return s.covered
}

func (s *pushTestSink) appliedDeltas() []aggregate.Delta {
	s.pmu.Lock()
	defer s.pmu.Unlock()
	return append([]aggregate.Delta(nil), s.deltas...)
}

// pushdownSender builds a sender whose jobs realm is offered for
// pushdown with a fast flush interval.
func pushdownSender(t testing.TB, sat *warehouse.DB, version string) *Sender {
	t.Helper()
	eng, err := aggregate.New(sat, nil)
	if err != nil {
		t.Fatal(err)
	}
	info := jobs.RealmInfo()
	if err := eng.Setup(info); err != nil {
		t.Fatal(err)
	}
	pf, err := NewPushdownFolder(eng, []realm.Info{info}, Filter{}, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	return &Sender{
		Instance: "ccr", Version: version, DB: sat,
		Rewriter: NewRewriter("ccr", Filter{}),
		Pushdown: pf,
	}
}

// TestPushdownFallsBackWithPlainSink: a hub whose sink predates
// pushdown must leave the connection in facts mode — the satellite
// warns and replicates raw facts, bit-identically to before.
func TestPushdownFallsBackWithPlainSink(t *testing.T) {
	sat := satelliteWithJobs(t, "ccr", 25)
	sink, hub := newTestSink(t)
	recv := &Receiver{Version: "v1", Sink: sink}
	addr, err := recv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sender := pushdownSender(t, sat, "v1")
	done := make(chan error, 1)
	go func() { done <- sender.Run(ctx, addr) }()

	waitFor(t, func() bool { return hub.Count(HubSchema("ccr"), jobs.FactTable) == 25 })
	if st := sender.Stats(); st.Mode != "facts" || st.Deltas != 0 {
		t.Errorf("stats = %+v, want facts mode with no deltas", st)
	}
	cancel()
	<-done
}

// TestPushdownSoftDecline: a wrapped ErrPushdownDeclined from
// negotiation keeps the connection alive in facts mode.
func TestPushdownSoftDecline(t *testing.T) {
	sat := satelliteWithJobs(t, "ccr", 10)
	base, hub := newTestSink(t)
	sink := &pushTestSink{testSink: base, negotiate: func(req PushdownRequest) error {
		return fmt.Errorf("%w: aggregation levels differ", ErrPushdownDeclined)
	}}
	recv := &Receiver{Version: "v1", Sink: sink}
	addr, err := recv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sender := pushdownSender(t, sat, "v1")
	done := make(chan error, 1)
	go func() { done <- sender.Run(ctx, addr) }()

	waitFor(t, func() bool { return hub.Count(HubSchema("ccr"), jobs.FactTable) == 10 })
	if st := sender.Stats(); st.Mode != "facts" {
		t.Errorf("mode = %q, want facts after soft decline", st.Mode)
	}
	if got := sink.appliedDeltas(); len(got) != 0 {
		t.Errorf("declined connection applied %d deltas", len(got))
	}
	cancel()
	<-done
}

// TestPushdownHardReject: any other negotiation error is a handshake
// rejection (e.g. the mode-switch guard demanding a resync) — the
// sender must stop, not silently fall back.
func TestPushdownHardReject(t *testing.T) {
	sat := satelliteWithJobs(t, "ccr", 5)
	base, _ := newTestSink(t)
	sink := &pushTestSink{testSink: base, negotiate: func(req PushdownRequest) error {
		return fmt.Errorf("member has pushdown residue; requires a resync")
	}}
	recv := &Receiver{Version: "v1", Sink: sink}
	addr, err := recv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()

	sender := pushdownSender(t, sat, "v1")
	if err := sender.Run(context.Background(), addr); !errors.Is(err, ErrHandshakeRejected) {
		t.Errorf("got %v, want handshake rejection", err)
	}
}

// TestPushdownEndToEnd: over a real TCP pair, a pushdown-granted
// connection ships a reset delta covering the binlog head instead of
// raw fact rows, ships incremental deltas as new facts commit, and
// re-sends a fresh reset after reconnecting.
func TestPushdownEndToEnd(t *testing.T) {
	sat := satelliteWithJobs(t, "ccr", 30)
	base, hub := newTestSink(t)
	sink := &pushTestSink{testSink: base}
	recv := &Receiver{Version: "v1", Sink: sink, HeartbeatInterval: 50 * time.Millisecond}
	addr, err := recv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	sender := pushdownSender(t, sat, "v1")
	done := make(chan error, 1)
	go func() { done <- sender.Run(ctx, addr) }()

	// The reset delta must converge to the binlog head and the fact
	// position must advance past the folded-away events.
	waitFor(t, func() bool {
		return sink.coveredLSN() == sat.Binlog().Last() && sink.ps.Get("ccr") == sat.Binlog().Last()
	})
	if got := hub.Count(HubSchema("ccr"), jobs.FactTable); got != 0 {
		t.Fatalf("pushdown connection replicated %d raw fact rows", got)
	}
	first := sink.appliedDeltas()
	if len(first) == 0 || !first[0].Reset || first[0].Realm != "Jobs" {
		t.Fatalf("first delta = %+v, want a Jobs reset", first)
	}
	if req := sink.negotiated[0]; !req.Enabled || len(req.Realms) != 1 || req.Realms[0] != "Jobs" || req.LevelsDigest == "" {
		t.Fatalf("negotiated request = %+v", req)
	}

	// New facts fold into an incremental delta behind the acked batch.
	rec := shredder.JobRecord{
		LocalJobID: 900, User: "x", Account: "a", Resource: "ccr-cluster", Queue: "q",
		Nodes: 1, Cores: 2,
		Submit: time.Date(2017, 8, 1, 0, 0, 0, 0, time.UTC),
		Start:  time.Date(2017, 8, 1, 1, 0, 0, 0, time.UTC),
		End:    time.Date(2017, 8, 1, 2, 0, 0, 0, time.UTC),
	}
	row, _ := jobs.FactFromRecord(rec, nil)
	if err := sat.Insert(jobs.SchemaName, jobs.FactTable, row); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return sink.coveredLSN() == sat.Binlog().Last() })
	if got := hub.Count(HubSchema("ccr"), jobs.FactTable); got != 0 {
		t.Fatalf("live fact leaked as a raw row: %d", got)
	}
	if st := sender.Stats(); st.Mode != "pushdown" || st.Deltas < 2 || st.DeltaCovered != sat.Binlog().Last() {
		t.Errorf("stats = %+v", st)
	}

	// Reconnect: the sender must start over with a fresh reset delta
	// (reset-on-connect makes kill/restart trivially convergent).
	cancel()
	<-done
	nBefore := len(sink.appliedDeltas())
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	done2 := make(chan error, 1)
	go func() { done2 <- sender.Run(ctx2, addr) }()
	waitFor(t, func() bool { return len(sink.appliedDeltas()) > nBefore })
	all := sink.appliedDeltas()
	if d := all[nBefore]; !d.Reset || d.CoveredLSN != sat.Binlog().Last() {
		t.Errorf("post-reconnect delta = Reset %v CoveredLSN %d, want a reset covering %d",
			d.Reset, d.CoveredLSN, sat.Binlog().Last())
	}
	cancel2()
	<-done2
}

// TestReceiverRejectsOversizeDeltaFrame: the delta batch frame rides
// the same length-limited decoder as fact batches, so a runaway or
// hostile delta payload must close the connection without being
// applied (no unbounded buffering, satellite task: gob-decode guard).
func TestReceiverRejectsOversizeDeltaFrame(t *testing.T) {
	base, _ := newTestSink(t)
	sink := &pushTestSink{testSink: base}
	recv := &Receiver{Version: "v", Sink: sink, HeartbeatInterval: 50 * time.Millisecond, MaxFrameBytes: 8192}
	addr, err := recv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	enc := gob.NewEncoder(conn)
	if err := enc.Encode(hello{Instance: "ccr", Version: "v", Pushdown: true, PushdownRealms: []string{"Jobs"}, LevelsDigest: "d"}); err != nil {
		t.Fatal(err)
	}
	dec := gob.NewDecoder(conn)
	var ha helloAck
	if err := dec.Decode(&ha); err != nil || !ha.OK || !ha.PushdownOK {
		t.Fatalf("handshake: %v %+v", err, ha)
	}

	// ~1 MiB of bins against an 8 KiB frame budget.
	bins := make([]aggregate.Bin, 4096)
	for i := range bins {
		bins[i] = aggregate.Bin{PeriodKey: int64(i), Dims: []string{"rrrrrrrrrrrrrrrrrrrrrrrrrrrrrrrr"},
			N: 1, Sums: []float64{1, 2, 3, 4}, Mins: []float64{1, 2, 3, 4},
			Maxs: []float64{1, 2, 3, 4}, Lasts: []float64{1, 2, 3, 4}}
	}
	huge := batch{UpTo: 1, Deltas: []aggregate.Delta{{Realm: "Jobs", Reset: true, CoveredLSN: 1,
		Periods: []aggregate.PeriodBins{{Period: "day", Bins: bins}}}}}
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	if err := enc.Encode(huge); err == nil {
		var a ack
		for {
			if err := dec.Decode(&a); err != nil {
				break
			}
			if !a.HB {
				t.Fatalf("hub acked an oversize delta frame: %+v", a)
			}
		}
	}
	if got := sink.appliedDeltas(); len(got) != 0 {
		t.Fatalf("oversize delta frame was applied: %d deltas", len(got))
	}
}

package replicate

import (
	"io"

	"xdmodfed/internal/obs"
)

// Replication instrumentation. Sender-side metrics are labeled by the
// replicating instance (one satellite process may run several senders);
// the lag gauge is additionally labeled by hub address so multi-hub
// routes (paper §II-C4) report independently.
var (
	mSentEvents = obs.Default.CounterVec("xdmodfed_replicate_sent_events_total",
		"Binlog events sent to a hub over tight replication.", "instance")
	mSentBatches = obs.Default.CounterVec("xdmodfed_replicate_sent_batches_total",
		"Replication batches acknowledged by a hub.", "instance")
	mSentBytes = obs.Default.CounterVec("xdmodfed_replicate_sent_bytes_total",
		"Bytes written to hub connections, gob framing included.", "instance")
	mRetries = obs.Default.CounterVec("xdmodfed_replicate_retries_total",
		"Sender reconnect attempts after transient failures.", "instance")
	mLag = obs.Default.GaugeVec("xdmodfed_replication_lag_events",
		"Per-satellite replication lag in binlog events: satellite binlog head minus the last hub-acknowledged position. Returns to 0 when the hub has applied everything.",
		"instance", "hub")
	mRecvBytes = obs.Default.Counter("xdmodfed_replicate_recv_bytes_total",
		"Bytes read from satellite connections on the hub side.")
	mRecvBatches = obs.Default.CounterVec("xdmodfed_replicate_recv_batches_total",
		"Replication batches received and applied, per member instance.", "instance")
	mPumpEvents = obs.Default.Counter("xdmodfed_replicate_pump_events_total",
		"Events copied by in-process Pump/PumpUntil replication.")
	mHeartbeats = obs.Default.CounterVec("xdmodfed_replicate_heartbeats_total",
		"Keep-alive frames sent, by role (hub acks, satellite idle batches).", "role")
	mPeerTimeouts = obs.Default.CounterVec("xdmodfed_replicate_peer_timeouts_total",
		"Connections closed because the peer was silent past the heartbeat deadline, by role.", "role")
	mOversizeFrames = obs.Default.Counter("xdmodfed_replicate_oversize_frames_total",
		"Connections closed because a replication frame exceeded the maximum size.")
)

// countingWriter counts bytes flowing to the wire.
type countingWriter struct {
	w io.Writer
	c *obs.Counter
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.c.Add(uint64(n))
	return n, err
}

// countingReader counts bytes arriving from the wire.
type countingReader struct {
	r io.Reader
	c *obs.Counter
}

func (cr *countingReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.c.Add(uint64(n))
	return n, err
}

package replicate

import (
	"context"
	"encoding/gob"
	"net"
	"testing"
	"time"
)

func TestNextRetryDelayGrowthAndCap(t *testing.T) {
	d := 100 * time.Millisecond
	want := []time.Duration{
		200 * time.Millisecond,
		400 * time.Millisecond,
		800 * time.Millisecond,
		1600 * time.Millisecond,
	}
	for i, w := range want {
		d = nextRetryDelay(d)
		if d != w {
			t.Fatalf("step %d: delay = %v, want %v", i, d, w)
		}
	}
	for i := 0; i < 20; i++ {
		d = nextRetryDelay(d)
	}
	if d != MaxRetryBackoff {
		t.Fatalf("delay = %v after 20 more doublings, want cap %v", d, MaxRetryBackoff)
	}
}

func TestJitteredDelayBounds(t *testing.T) {
	d := 800 * time.Millisecond
	for i := 0; i < 1000; i++ {
		j := jitteredDelay(d)
		if j < d/2 || j > d {
			t.Fatalf("jitteredDelay(%v) = %v, outside [%v, %v]", d, j, d/2, d)
		}
	}
}

// TestBackoffResetsAfterHandshake proves the delay resets to the
// initial value after every successful connect: a hub that accepts the
// handshake and then drops the connection 12 times in a row must be
// redialed ~12 times at the initial 10ms delay (total well under a
// second of sleeping). Without the reset the delays would sum to
// 10+20+40+...+20480ms ≈ 41s and the test deadline would blow.
func TestBackoffResetsAfterHandshake(t *testing.T) {
	// Pending binlog events make the sender try to ship a batch right
	// after the handshake, so it notices the dropped connection instead
	// of blocking on an empty binlog.
	db := satelliteWithJobs(t, "backoffsat", 3)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	const drops = 12
	accepted := make(chan struct{}, drops+1)
	go func() {
		for i := 0; i < drops; i++ {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			var h hello
			if err := gob.NewDecoder(conn).Decode(&h); err == nil {
				// Accept the handshake, then drop the connection: a
				// transient failure on a healthy hub.
				gob.NewEncoder(conn).Encode(helloAck{OK: true, Resume: 0})
			}
			conn.Close()
			accepted <- struct{}{}
		}
	}()

	s := &Sender{
		Instance: "backoffsat",
		Version:  "t",
		DB:       db,
		Rewriter: NewRewriter("backoffsat", Filter{}),
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- s.RunWithRetry(ctx, ln.Addr().String(), 10*time.Millisecond) }()

	deadline := time.After(5 * time.Second)
	for i := 0; i < drops; i++ {
		select {
		case <-accepted:
		case <-deadline:
			t.Fatalf("only %d/%d reconnects before deadline: backoff did not reset after handshake", i, drops)
		}
	}
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("RunWithRetry returned %v after cancel", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("RunWithRetry did not return after cancel")
	}
}

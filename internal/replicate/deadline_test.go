package replicate

import (
	"context"
	"encoding/gob"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"xdmodfed/internal/realm/jobs"
	"xdmodfed/internal/shredder"
	"xdmodfed/internal/warehouse"
)

// TestReceiverDetectsStalledPeer: a satellite that handshakes and then
// goes silent (stall, partition, power loss) must be disconnected
// within 2× the heartbeat interval instead of pinning a hub goroutine
// forever.
func TestReceiverDetectsStalledPeer(t *testing.T) {
	const hb = 50 * time.Millisecond
	sink, _ := newTestSink(t)
	recv := &Receiver{Version: "v", Sink: sink, HeartbeatInterval: hb}
	addr, err := recv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := gob.NewEncoder(conn).Encode(hello{Instance: "ccr", Version: "v"}); err != nil {
		t.Fatal(err)
	}
	dec := gob.NewDecoder(conn)
	var ha helloAck
	if err := dec.Decode(&ha); err != nil || !ha.OK {
		t.Fatalf("handshake: %v %+v", err, ha)
	}
	if ha.Heartbeat != hb {
		t.Fatalf("hub advertised heartbeat %v, want %v", ha.Heartbeat, hb)
	}

	// Never send a batch or heartbeat; drain hub keep-alives until the
	// hub gives up on us. It must do so within 2× the interval (plus
	// scheduling slack), not hang.
	start := time.Now()
	for {
		var a ack
		if err := dec.Decode(&a); err != nil {
			break // hub closed the connection
		}
	}
	elapsed := time.Since(start)
	if elapsed > 4*hb {
		t.Fatalf("hub took %v to drop a stalled peer, want ≈%v", elapsed, 2*hb)
	}
}

// TestSenderDetectsDeadHub: a hub that handshakes and then never acks
// or heartbeats again must not hang the sender forever — the read
// deadline (2× heartbeat) fires and Run returns.
func TestSenderDetectsDeadHub(t *testing.T) {
	const hb = 50 * time.Millisecond
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		var h hello
		if err := gob.NewDecoder(conn).Decode(&h); err != nil {
			return
		}
		if err := gob.NewEncoder(conn).Encode(helloAck{OK: true, Resume: 0, Heartbeat: hb}); err != nil {
			return
		}
		// Play dead: swallow frames, never respond.
		io.Copy(io.Discard, conn)
	}()

	sat := satelliteWithJobs(t, "ccr", 10)
	sender := &Sender{Instance: "ccr", Version: "v", DB: sat, Rewriter: NewRewriter("ccr", Filter{})}
	errc := make(chan error, 1)
	start := time.Now()
	go func() { errc <- sender.Run(context.Background(), ln.Addr().String()) }()
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("Run returned nil against a dead hub")
		}
		if elapsed := time.Since(start); elapsed > time.Second {
			t.Fatalf("sender took %v to notice the dead hub, want ≈%v", elapsed, 2*hb)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("sender hung on a dead hub")
	}
}

// TestIdleConnectionSurvivesOnHeartbeats: with nothing to replicate
// for many intervals, both sides' keep-alives must hold the
// connection open, and a late write still flows through it.
func TestIdleConnectionSurvivesOnHeartbeats(t *testing.T) {
	const hb = 50 * time.Millisecond
	sat := satelliteWithJobs(t, "ccr", 5)
	sink, hub := newTestSink(t)
	recv := &Receiver{Version: "v", Sink: sink, HeartbeatInterval: hb}
	addr, err := recv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sender := &Sender{Instance: "ccr", Version: "v", DB: sat, Rewriter: NewRewriter("ccr", Filter{})}
	errc := make(chan error, 1)
	go func() { errc <- sender.Run(ctx, addr) }()

	waitFor(t, func() bool { return hub.Count(HubSchema("ccr"), jobs.FactTable) == 5 })
	// Idle for 10 heartbeat intervals — far past the 2× deadline; only
	// keep-alives prevent either side from declaring the other dead.
	time.Sleep(10 * hb)
	select {
	case err := <-errc:
		t.Fatalf("sender dropped an idle-but-healthy connection: %v", err)
	default:
	}
	rec := shredder.JobRecord{
		LocalJobID: 9999, User: "u", Account: "a", Resource: "ccr-cluster", Queue: "q",
		Nodes: 1, Cores: 2,
		Submit: time.Date(2017, 1, 1, 0, 0, 0, 0, time.UTC),
		Start:  time.Date(2017, 1, 1, 1, 0, 0, 0, time.UTC),
		End:    time.Date(2017, 1, 1, 2, 0, 0, 0, time.UTC),
	}
	row, err := jobs.FactFromRecord(rec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := sat.Insert(jobs.SchemaName, jobs.FactTable, row); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return hub.Count(HubSchema("ccr"), jobs.FactTable) == 6 })
}

// TestReceiverRejectsOversizeFrame: a frame larger than MaxFrameBytes
// (corrupt length prefix, runaway batch) must close the connection
// without being applied, instead of buffering without bound.
func TestReceiverRejectsOversizeFrame(t *testing.T) {
	sink, hub := newTestSink(t)
	recv := &Receiver{Version: "v", Sink: sink, HeartbeatInterval: 50 * time.Millisecond, MaxFrameBytes: 8192}
	addr, err := recv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	enc := gob.NewEncoder(conn)
	if err := enc.Encode(hello{Instance: "ccr", Version: "v"}); err != nil {
		t.Fatal(err)
	}
	dec := gob.NewDecoder(conn)
	var ha helloAck
	if err := dec.Decode(&ha); err != nil || !ha.OK {
		t.Fatalf("handshake: %v %+v", err, ha)
	}
	huge := batch{UpTo: 1, Events: []warehouse.Event{{
		LSN: 1, Kind: warehouse.EvInsert, Schema: "s", Table: "t",
		Row: []any{strings.Repeat("x", 1<<20)}, // ~1 MiB >> 8 KiB cap
	}}}
	// The hub must hang up mid-frame; with a ~1MiB frame against an
	// 8KiB budget either the write fails or the follow-up read does.
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	if err := enc.Encode(huge); err == nil {
		var a ack
		for {
			if err := dec.Decode(&a); err != nil {
				break
			}
			if !a.HB {
				t.Fatalf("hub acked an oversize frame: %+v", a)
			}
		}
	}
	if got := hub.Count(HubSchema("ccr"), jobs.FactTable); got != 0 {
		t.Fatalf("oversize frame was applied: %d rows", got)
	}
}

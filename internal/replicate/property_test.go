package replicate

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"xdmodfed/internal/realm/jobs"
	"xdmodfed/internal/warehouse"
)

// TestPropertyExcludedResourceNeverLeaks: for arbitrary interleavings
// of inserts/updates/deletes across resources, no event for an
// excluded resource ever survives the rewriter — the paper's security
// guarantee that "potentially sensitive data does not ever get
// replicated to the federation hub" (§II-C4).
func TestPropertyExcludedResourceNeverLeaks(t *testing.T) {
	def := jobs.Def()
	resCol := -1
	for i, c := range def.Columns {
		if c.Name == "resource" {
			resCol = i
		}
	}
	f := func(seed int64, nOps uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		rw := NewRewriter("sat", Filter{ExcludeResources: map[string]bool{"secret": true}})
		d := def.Clone()
		if _, ok := rw.Process(warehouse.Event{Kind: warehouse.EvCreateTable, Schema: "modw", Table: "jobfact", Def: &d}); !ok {
			return false
		}
		resources := []string{"open-a", "open-b", "secret"}
		for i := 0; i < int(nOps); i++ {
			row := make([]any, len(def.Columns))
			res := resources[rng.Intn(len(resources))]
			row[resCol] = res
			kind := []warehouse.EventKind{warehouse.EvInsert, warehouse.EvUpdate, warehouse.EvDelete}[rng.Intn(3)]
			ev := warehouse.Event{Kind: kind, Schema: "modw", Table: "jobfact"}
			if kind == warehouse.EvDelete {
				ev.Old = row
			} else {
				ev.Row = row
			}
			out, ok := rw.Process(ev)
			if res == "secret" && ok {
				return false // leak!
			}
			if res != "secret" && !ok {
				return false // over-filtering
			}
			if ok && out.Schema != "fed_sat" {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestPropertyPumpEquivalentToSnapshot: replicating any random
// mutation history via the binlog yields the same hub table contents
// as shipping a dump (tight and loose federation agree).
func TestPropertyPumpEquivalentToSnapshot(t *testing.T) {
	f := func(seed int64, nOps uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		sat := warehouse.Open("sat")
		if _, err := jobs.Setup(sat); err != nil {
			return false
		}
		tab, _ := sat.TableIn(jobs.SchemaName, jobs.FactTable)
		base := time.Date(2017, 1, 1, 0, 0, 0, 0, time.UTC)
		sat.Do(func() error {
			for i := 0; i < int(nOps); i++ {
				id := int64(rng.Intn(24) + 1)
				switch rng.Intn(3) {
				case 0, 1:
					tab.Upsert(map[string]any{
						jobs.ColJobID: id, jobs.ColResource: "r", jobs.ColUser: "u",
						jobs.ColPI: "p", jobs.ColQueue: "q", jobs.ColNodes: int64(1),
						jobs.ColCores:  int64(rng.Intn(64) + 1),
						jobs.ColSubmit: base, jobs.ColStart: base, jobs.ColEnd: base.Add(time.Hour),
						jobs.ColWallSec: float64(rng.Intn(100000)), jobs.ColWaitSec: 0.0,
						jobs.ColCPUHours: rng.Float64() * 100, jobs.ColXDSU: rng.Float64() * 100,
						jobs.ColDayKey: int64(20170101), jobs.ColMonthKey: int64(201701),
					})
				case 2:
					tab.DeleteByKey("r", id)
				}
			}
			return nil
		})

		// Tight: pump the binlog.
		tight := warehouse.Open("hub-tight")
		if _, err := Pump(sat, tight, NewRewriter("sat", Filter{}), 0); err != nil {
			return false
		}
		// Loose: dump and load.
		loose := warehouse.Open("hub-loose")
		var dump bytes.Buffer
		if err := Dump(sat, []string{jobs.SchemaName}, &dump); err != nil {
			return false
		}
		if _, err := Load(loose, "sat", &dump); err != nil {
			return false
		}

		tt, err1 := tight.TableIn(HubSchema("sat"), jobs.FactTable)
		lt, err2 := loose.TableIn(HubSchema("sat"), jobs.FactTable)
		if err1 != nil || err2 != nil {
			return false
		}
		if tt.Len() != lt.Len() || tt.Len() != tab.Len() {
			return false
		}
		equal := true
		tight.View(func() error {
			tt.Scan(func(r warehouse.Row) bool {
				lr, ok := lt.GetByKey(r.Get(jobs.ColResource), r.Get(jobs.ColJobID))
				if !ok || lr.Float(jobs.ColCPUHours) != r.Float(jobs.ColCPUHours) ||
					lr.Int(jobs.ColCores) != r.Int(jobs.ColCores) {
					equal = false
					return false
				}
				return true
			})
			return nil
		})
		return equal
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

package replicate

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"xdmodfed/internal/aggregate"
	"xdmodfed/internal/faults"
	"xdmodfed/internal/obs"
	"xdmodfed/internal/warehouse"
)

// Tight federation: the satellite streams binlog events to the hub
// over TCP as they are committed ("live replication", paper §II-A).
// Protocol (gob-framed):
//
//	satellite -> hub:  hello{instance, version}
//	hub -> satellite:  helloAck{ok, err, resumeLSN, heartbeat}
//	satellite -> hub:  batch{upTo, events}   (repeated; hb=true when idle)
//	hub -> satellite:  ack{upTo}             (one per batch; hb=true on a timer)
//
// The hub enforces the paper's same-version requirement ("each
// individual XDMoD instance must run the same version of XDMoD",
// §II-A) at handshake time and tells the satellite where to resume
// from, using its durable per-instance commit position.
//
// Liveness: every read and write carries a deadline. The hub sends a
// heartbeat ack every HeartbeatInterval and the satellite sends a
// heartbeat batch whenever it has been idle for one interval, so each
// side reads *something* at least once per interval from a live peer
// and closes the connection after 2× the interval of silence — a
// silently-dead peer (power loss, network partition, injected stall)
// can no longer hang a sender or receiver goroutine forever. The hub
// picks the interval and propagates it in the handshake ack so both
// sides always agree.

var repLog = obs.Logger("replicate")

const (
	// DefaultHeartbeatInterval paces hub heartbeat acks and idle
	// satellite heartbeat batches; a peer silent for 2× this is dead.
	DefaultHeartbeatInterval = 5 * time.Second
	// DefaultMaxFrameBytes bounds how many bytes the hub will read for
	// a single replication frame before giving up on the connection.
	DefaultMaxFrameBytes = 64 << 20
	// handshakeTimeout bounds dial + hello/helloAck exchange.
	handshakeTimeout = 30 * time.Second
)

// writeTimeout is the deadline for writing one protocol frame.
func writeTimeout(hb time.Duration) time.Duration {
	if d := 2 * hb; d > time.Second {
		return d
	}
	return time.Second
}

// isTimeout reports whether err is a deadline expiry rather than a
// peer close or protocol error.
func isTimeout(err error) bool {
	if errors.Is(err, os.ErrDeadlineExceeded) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

type hello struct {
	Instance string
	Version  string
	// Trace is the satellite handshake span's wire-form trace context
	// (obs traceparent). Optional: gob omits the zero value, so old
	// peers interoperate and an empty string means "no trace".
	Trace string
	// Pushdown offers aggregation pushdown for PushdownRealms: the
	// satellite folds those realms' facts into partial-aggregate deltas
	// instead of shipping them raw (see pushdown.go). LevelsDigest
	// fingerprints the satellite's aggregation levels; the hub declines
	// the offer on a mismatch. All three fields are zero from old
	// satellites — gob omits zero values and ignores unknown wire
	// fields, so mixed-version federations keep working in facts mode.
	Pushdown       bool
	PushdownRealms []string
	LevelsDigest   string
}

type helloAck struct {
	OK     bool
	Err    string
	Resume uint64
	// RetryAfter, when nonzero on a rejection, tells the satellite the
	// refusal is temporary (e.g. the member is quarantined) and when to
	// try again, rather than a permanent stop.
	RetryAfter time.Duration
	// Heartbeat is the hub's heartbeat interval; the satellite adopts
	// it (zero from an old hub means DefaultHeartbeatInterval).
	Heartbeat time.Duration
	// Trace is the hub accept span's trace context (optional; joins the
	// satellite's handshake trace when hello carried one).
	Trace string
	// PushdownOK grants the hello's pushdown offer. False with a
	// nonempty PushdownErr is a soft decline: the connection proceeds,
	// the satellite falls back to raw fact replication (an old hub
	// leaves both fields zero, which reads as the same decline).
	PushdownOK  bool
	PushdownErr string
}

type batch struct {
	UpTo   uint64
	Events []warehouse.Event
	// HB marks an empty keep-alive frame sent while the satellite has
	// nothing to replicate; the hub ignores it (no ack, no apply).
	HB bool
	// Trace is the sending span's trace context, itself parented under
	// the ingest that produced the batch's newest events (when the
	// binlog retains that mark) — the hub apply joins it, so one
	// TraceID spans ingest → send → apply → fold across processes.
	// Optional; zero value = absent.
	Trace string
	// Deltas carries partial-aggregate deltas on a pushdown-granted
	// connection (possibly alongside raw events for non-pushdown
	// tables). Applied after Events, before the ack. Old hubs never
	// grant pushdown, so they never see this field.
	Deltas []aggregate.Delta
}

type ack struct {
	UpTo uint64
	// HB marks a hub keep-alive; it acknowledges nothing.
	HB bool
}

// RetryAfterError reports a temporary refusal: the peer asked us to
// come back after a delay (member quarantine, hub overload). Senders
// treat it as transient and sleep exactly the requested delay.
type RetryAfterError struct {
	After  time.Duration
	Reason string
}

func (e *RetryAfterError) Error() string {
	return fmt.Sprintf("replicate: refused, retry after %s: %s", e.After, e.Reason)
}

// errFrameTooBig reports a replication frame exceeding MaxFrameBytes.
var errFrameTooBig = errors.New("replicate: frame exceeds maximum size")

// frameLimitReader caps how many bytes a single gob Decode may pull
// off the wire, so a corrupt or hostile length prefix cannot make the
// hub read (and buffer) without bound. The budget is reset before
// each Decode; it is approximate — gob's internal buffering may carry
// a few KB across frames — but bounds any single frame to roughly max.
type frameLimitReader struct {
	r   io.Reader
	max int64
	n   int64
}

func (f *frameLimitReader) Read(p []byte) (int, error) {
	if f.n >= f.max {
		return 0, errFrameTooBig
	}
	if int64(len(p)) > f.max-f.n {
		p = p[:f.max-f.n]
	}
	n, err := f.r.Read(p)
	f.n += int64(n)
	return n, err
}

func (f *frameLimitReader) reset() { f.n = 0 }

// Sink is the hub-side handler for replicated event streams; the
// federation core provides one.
type Sink interface {
	// Resume returns the position after which instance should resume.
	Resume(instance string) (uint64, error)
	// ApplyBatch applies events from instance and durably records upTo
	// as its new commit position.
	ApplyBatch(instance string, upTo uint64, events []warehouse.Event) error
}

// ContextSink is an optional Sink extension: a sink whose apply
// accepts the incoming batch's trace context. The receiver prefers it
// when implemented, so the hub's apply span joins the satellite's
// trace instead of starting a fresh one.
type ContextSink interface {
	Sink
	// ApplyBatchCtx is ApplyBatch with the batch frame's trace context
	// installed in ctx (obs.ContextWithTraceParent).
	ApplyBatchCtx(ctx context.Context, instance string, upTo uint64, events []warehouse.Event) error
}

// ErrPushdownDeclined marks a NegotiatePushdown refusal as soft: the
// hub wraps it (fmt.Errorf("%w: ...", ErrPushdownDeclined)) to say
// "not this offer, but the connection may proceed in facts mode".
// Any non-wrapped error rejects the handshake outright.
var ErrPushdownDeclined = errors.New("replicate: pushdown declined")

// PushdownRequest is a satellite's hello-time pushdown offer (or the
// explicit absence of one, Enabled false — the hub still sees it, so
// it can refuse a member that previously pushed partial aggregates
// and now silently reconnects in facts mode).
type PushdownRequest struct {
	Enabled      bool
	Realms       []string
	LevelsDigest string
}

// PushdownSink is an optional Sink extension for hubs that accept
// partial-aggregate deltas. When the sink implements it, the receiver
// calls NegotiatePushdown on every handshake.
type PushdownSink interface {
	Sink
	// NegotiatePushdown vets an instance's offer: nil grants it, an
	// ErrPushdownDeclined-wrapped error declines it softly (connection
	// proceeds in facts mode), any other error rejects the handshake.
	NegotiatePushdown(instance string, req PushdownRequest) error
	// ApplyDeltas installs a granted member's deltas; upTo is the
	// carrying batch's position (for bookkeeping only — delta
	// application is idempotent and needs no positions).
	ApplyDeltas(ctx context.Context, instance string, upTo uint64, deltas []aggregate.Delta) error
}

// Receiver accepts tight-replication connections on the hub.
type Receiver struct {
	Version string
	Sink    Sink
	// Authorize, when set, vets an instance at handshake (the
	// federation core uses it to restrict membership to registered
	// instances and to bounce quarantined members with a RetryAfter).
	Authorize func(instance string) error
	// HeartbeatInterval paces keep-alive acks and the peer-silence
	// deadline (2× this). Zero means DefaultHeartbeatInterval.
	HeartbeatInterval time.Duration
	// MaxFrameBytes bounds a single replication frame. Zero means
	// DefaultMaxFrameBytes.
	MaxFrameBytes int64
	// Faults, when set, injects connection faults on every accepted
	// conn (tests only).
	Faults *faults.Registry

	ln     net.Listener
	mu     sync.Mutex
	closed bool
	wg     sync.WaitGroup
}

// Listen starts accepting connections on addr (e.g. "127.0.0.1:0").
// It returns the bound address.
func (r *Receiver) Listen(addr string) (string, error) {
	if r.Sink == nil {
		return "", fmt.Errorf("replicate: receiver has no sink")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	r.ln = ln
	r.wg.Add(1)
	go r.acceptLoop()
	return ln.Addr().String(), nil
}

func (r *Receiver) acceptLoop() {
	defer r.wg.Done()
	for {
		conn, err := r.ln.Accept()
		if err != nil {
			return // listener closed
		}
		r.wg.Add(1)
		go func() {
			defer r.wg.Done()
			defer conn.Close()
			r.serve(faults.WrapConn(conn, r.Faults))
		}()
	}
}

func (r *Receiver) serve(conn net.Conn) {
	hb := r.HeartbeatInterval
	if hb <= 0 {
		hb = DefaultHeartbeatInterval
	}
	maxFrame := r.MaxFrameBytes
	if maxFrame <= 0 {
		maxFrame = DefaultMaxFrameBytes
	}
	flr := &frameLimitReader{r: &countingReader{r: conn, c: mRecvBytes}, max: maxFrame}
	dec := gob.NewDecoder(flr)
	enc := gob.NewEncoder(conn)
	// The heartbeat goroutine and the apply loop share the encoder.
	var encMu sync.Mutex
	send := func(v any) error {
		encMu.Lock()
		defer encMu.Unlock()
		conn.SetWriteDeadline(time.Now().Add(writeTimeout(hb)))
		return enc.Encode(v)
	}

	conn.SetReadDeadline(time.Now().Add(handshakeTimeout))
	flr.reset()
	var h hello
	if err := dec.Decode(&h); err != nil {
		return
	}
	// The accept span joins the satellite's handshake trace when the
	// hello carried one, so a refused connect is visible on both rings.
	hctx, hsp := obs.StartSpan(
		obs.ContextWithTraceParent(context.Background(), h.Trace), "replicate.accept")
	hsp.SetAttr("instance", h.Instance)
	if h.Version != r.Version {
		send(helloAck{OK: false, Err: fmt.Sprintf(
			"version mismatch: hub runs %q, instance %q runs %q (each instance must run the same version)",
			r.Version, h.Instance, h.Version)})
		hsp.SetAttr("rejected", "version")
		hsp.End()
		return
	}
	if r.Authorize != nil {
		if err := r.Authorize(h.Instance); err != nil {
			send(rejection(err))
			hsp.SetAttr("rejected", err.Error())
			hsp.End()
			return
		}
	}
	// Pushdown negotiation. The sink (when it speaks pushdown) vets
	// every handshake, including Enabled=false offers — a member that
	// previously pushed partial aggregates must not silently reconnect
	// in facts mode over stale hub-side bins.
	pdGranted := false
	var pdErr string
	pdSink, pdCapable := r.Sink.(PushdownSink)
	if pdCapable {
		err := pdSink.NegotiatePushdown(h.Instance, PushdownRequest{
			Enabled: h.Pushdown, Realms: h.PushdownRealms, LevelsDigest: h.LevelsDigest})
		switch {
		case err == nil:
			pdGranted = h.Pushdown
		case errors.Is(err, ErrPushdownDeclined):
			pdErr = err.Error()
		default:
			repLog.Warn("replication handshake rejected",
				"instance", h.Instance, "err", err)
			send(rejection(err))
			hsp.SetAttr("rejected", err.Error())
			hsp.End()
			return
		}
	} else if h.Pushdown {
		pdErr = "hub does not support aggregation pushdown"
	}
	resume, err := r.Sink.Resume(h.Instance)
	if err != nil {
		send(rejection(err))
		hsp.SetAttr("rejected", err.Error())
		hsp.End()
		return
	}
	ackErr := send(helloAck{OK: true, Resume: resume, Heartbeat: hb, Trace: obs.TraceParent(hctx),
		PushdownOK: pdGranted, PushdownErr: pdErr})
	hsp.SetAttr("resume", strconv.FormatUint(resume, 10))
	hsp.End()
	if ackErr != nil {
		return
	}

	// Keep-alive: a satellite with nothing to send still hears from us
	// every interval, so it can tell a quiet hub from a dead one.
	done := make(chan struct{})
	defer close(done)
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		t := time.NewTicker(hb)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				if err := send(ack{HB: true}); err != nil {
					conn.Close() // wake the decode loop
					return
				}
				mHeartbeats.With("hub").Inc()
			}
		}
	}()

	for {
		conn.SetReadDeadline(time.Now().Add(2 * hb))
		flr.reset()
		var b batch
		if err := dec.Decode(&b); err != nil {
			switch {
			case isTimeout(err):
				mPeerTimeouts.With("hub").Inc()
				repLog.Warn("replication peer silent, closing",
					"instance", h.Instance, "silence", 2*hb)
			case errors.Is(err, errFrameTooBig):
				mOversizeFrames.Inc()
				repLog.Error("oversize replication frame, closing",
					"instance", h.Instance, "max_bytes", maxFrame)
			}
			return
		}
		if b.HB {
			continue // satellite keep-alive
		}
		var err error
		if cs, ok := r.Sink.(ContextSink); ok {
			// Hand the frame's trace context to the sink so its apply
			// span continues the satellite's trace.
			actx := obs.ContextWithTraceParent(context.Background(), b.Trace)
			err = cs.ApplyBatchCtx(actx, h.Instance, b.UpTo, b.Events)
		} else {
			err = r.Sink.ApplyBatch(h.Instance, b.UpTo, b.Events)
		}
		if err != nil {
			repLog.Warn("replication batch rejected",
				"instance", h.Instance, "up_to", b.UpTo, "err", err)
			return
		}
		if len(b.Deltas) > 0 {
			if !pdGranted {
				// Protocol violation: the frame carries deltas this
				// connection never negotiated.
				repLog.Error("unnegotiated pushdown deltas, closing",
					"instance", h.Instance, "deltas", len(b.Deltas))
				return
			}
			actx := obs.ContextWithTraceParent(context.Background(), b.Trace)
			if err := pdSink.ApplyDeltas(actx, h.Instance, b.UpTo, b.Deltas); err != nil {
				repLog.Warn("pushdown deltas rejected",
					"instance", h.Instance, "up_to", b.UpTo, "err", err)
				return
			}
		}
		mRecvBatches.With(h.Instance).Inc()
		if err := send(ack{UpTo: b.UpTo}); err != nil {
			return
		}
	}
}

// rejection maps an authorize/resume error to a handshake nack,
// preserving a RetryAfterError's delay so the satellite knows the
// refusal is temporary.
func rejection(err error) helloAck {
	ha := helloAck{OK: false, Err: err.Error()}
	var ra *RetryAfterError
	if errors.As(err, &ra) {
		ha.RetryAfter = ra.After
	}
	return ha
}

// Close stops the receiver and waits for connection handlers.
func (r *Receiver) Close() {
	r.mu.Lock()
	if !r.closed && r.ln != nil {
		r.closed = true
		r.ln.Close()
	}
	r.mu.Unlock()
	r.wg.Wait()
}

// SenderStats reports a sender's progress.
type SenderStats struct {
	Hub         string // hub address of the active/most recent connection
	SentBatches int
	SentEvents  int
	Position    uint64
	// Mode is the replication mode of the current connection: "facts",
	// or "pushdown" when the hub granted aggregation pushdown.
	Mode string
	// Deltas / DeltaRows count flushed pushdown deltas and the bins
	// they carried; DeltaCovered is the binlog position the newest
	// flushed deltas cover.
	Deltas       int
	DeltaRows    int
	DeltaCovered uint64
}

// byteTap counts bytes written through it; the sender tees the gob
// stream through one so a delta flush's exact wire size is the tap
// delta around its Encode (the protocol is written by one goroutine).
type byteTap struct{ n int64 }

func (t *byteTap) Write(p []byte) (int, error) {
	t.n += int64(len(p))
	return len(p), nil
}

// Sender streams one satellite's binlog to one hub (one Sender per
// federation route; a satellite replicating to multiple hubs runs
// several senders, paper §II-C4).
type Sender struct {
	Instance  string
	Version   string
	DB        *warehouse.DB
	Rewriter  *Rewriter
	BatchSize int // default 512
	// Pushdown, when set, offers aggregation pushdown at handshake and
	// — if the hub grants it — folds the pushdown realms' fact events
	// into partial-aggregate deltas instead of shipping them raw. When
	// the hub declines, the sender logs once and replicates facts.
	Pushdown *PushdownFolder

	mu    sync.Mutex
	stats SenderStats

	// handshook records whether the most recent Run got past the hub's
	// handshake; RunWithRetry uses it to reset the backoff after a
	// successful (re)connect instead of punishing a healthy hub that
	// dropped one connection with an already-grown delay.
	handshook atomic.Bool
}

// Stats returns a snapshot of the sender's progress.
func (s *Sender) Stats() SenderStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// ErrHandshakeRejected reports that the hub refused the connection
// permanently (version mismatch or unauthorized instance).
var ErrHandshakeRejected = errors.New("replicate: handshake rejected")

// Run connects to the hub and streams until the context is cancelled,
// the binlog closes, or the connection fails. It returns nil on clean
// shutdown. Callers wanting reconnection wrap Run in a retry loop
// (see RunWithRetry).
func (s *Sender) Run(ctx context.Context, hubAddr string) error {
	d := net.Dialer{Timeout: handshakeTimeout}
	conn, err := d.DialContext(ctx, "tcp", hubAddr)
	if err != nil {
		return err
	}
	defer conn.Close()
	// Unblock protocol reads/writes when the context is cancelled.
	stop := context.AfterFunc(ctx, func() { conn.Close() })
	defer stop()

	tap := &byteTap{}
	enc := gob.NewEncoder(io.MultiWriter(tap, &countingWriter{w: conn, c: mSentBytes.With(s.Instance)}))
	dec := gob.NewDecoder(conn)
	conn.SetDeadline(time.Now().Add(handshakeTimeout))
	hctx, hsp := obs.StartSpan(ctx, "replicate.handshake")
	hsp.SetAttr("instance", s.Instance)
	hsp.SetAttr("hub", hubAddr)
	h := hello{Instance: s.Instance, Version: s.Version, Trace: obs.TraceParent(hctx)}
	if s.Pushdown != nil {
		h.Pushdown = true
		h.PushdownRealms = s.Pushdown.Realms()
		h.LevelsDigest = s.Pushdown.Digest()
	}
	if err := enc.Encode(h); err != nil {
		hsp.End()
		return err
	}
	var ha helloAck
	if err := dec.Decode(&ha); err != nil {
		hsp.End()
		return err
	}
	hsp.SetAttr("ok", strconv.FormatBool(ha.OK))
	hsp.End()
	if !ha.OK {
		if ha.RetryAfter > 0 {
			return &RetryAfterError{After: ha.RetryAfter, Reason: ha.Err}
		}
		return fmt.Errorf("%w: %s", ErrHandshakeRejected, ha.Err)
	}
	conn.SetDeadline(time.Time{}) // handshake done; per-frame deadlines below
	hb := ha.Heartbeat
	if hb <= 0 {
		hb = DefaultHeartbeatInterval
	}
	pos := ha.Resume
	var pd *PushdownFolder
	if s.Pushdown != nil {
		if ha.PushdownOK {
			pd = s.Pushdown
		} else {
			reason := ha.PushdownErr
			if reason == "" {
				reason = "hub predates aggregation pushdown"
			}
			repLog.Warn("hub declined aggregation pushdown; replicating raw facts",
				"instance", s.Instance, "hub", hubAddr, "reason", reason)
		}
	}
	mode := "facts"
	if pd != nil {
		mode = "pushdown"
	}
	s.handshook.Store(true)
	s.mu.Lock()
	s.stats.Hub = hubAddr
	s.stats.Mode = mode
	// The hub's resume position counts as acknowledged: a sender that
	// reconnects with nothing new to send must not report stale lag.
	if pos > s.stats.Position {
		s.stats.Position = pos
	}
	s.mu.Unlock()
	lag := mLag.With(s.Instance, hubAddr)
	s.setLag(lag, pos)
	batchSize := s.BatchSize
	if batchSize <= 0 {
		batchSize = 512
	}

	// Reader goroutine: the hub's frames are batch acks interleaved
	// with keep-alives, so acks are consumed off the main loop. A hub
	// silent for 2× the heartbeat interval is dead — the read deadline
	// fires, the conn is closed, and the main loop unblocks.
	acks := make(chan ack, 1) // stop-and-wait: at most one outstanding batch
	readErr := make(chan error, 1)
	go func() {
		for {
			conn.SetReadDeadline(time.Now().Add(2 * hb))
			var a ack
			if err := dec.Decode(&a); err != nil {
				if isTimeout(err) {
					mPeerTimeouts.With("satellite").Inc()
					repLog.Warn("hub silent, closing",
						"instance", s.Instance, "hub", hubAddr, "silence", 2*hb)
				}
				readErr <- err
				conn.Close() // unblock a sender stuck writing
				return
			}
			if a.HB {
				continue
			}
			select {
			case acks <- a:
			default:
			}
		}
	}()

	// awaitAck consumes the hub's ack for upTo. ok=false with a nil
	// error means clean context shutdown; the caller returns nil.
	awaitAck := func(upTo uint64) (bool, error) {
		select {
		case a := <-acks:
			if a.UpTo != upTo {
				return false, fmt.Errorf("replicate: hub acked %d, expected %d", a.UpTo, upTo)
			}
			return true, nil
		case err := <-readErr:
			if ctx.Err() != nil {
				return false, nil
			}
			return false, err
		case <-ctx.Done():
			return false, nil
		}
	}

	// flushDeltas ships due pushdown deltas in their own batch frame.
	// The frame's UpTo repeats the already-acknowledged position —
	// delta application is idempotent and carries no positions of its
	// own — and the exact wire size is the encoder tap's delta.
	flushDeltas := func(now time.Time) (bool, error) {
		if pd == nil || !pd.Due(now) {
			return true, nil
		}
		deltas, rows, err := pd.Flush(now)
		if err != nil {
			return false, err
		}
		if len(deltas) == 0 {
			return true, nil
		}
		before := tap.n
		conn.SetWriteDeadline(time.Now().Add(writeTimeout(hb)))
		if err := enc.Encode(batch{UpTo: pos, Deltas: deltas}); err != nil {
			if ctx.Err() != nil {
				return false, nil
			}
			return false, err
		}
		if ok, err := awaitAck(pos); !ok || err != nil {
			return ok, err
		}
		aggregate.NotePushdownSent(len(deltas), rows, int(tap.n-before))
		var covered uint64
		for _, d := range deltas {
			if d.CoveredLSN > covered {
				covered = d.CoveredLSN
			}
		}
		s.mu.Lock()
		s.stats.Deltas += len(deltas)
		s.stats.DeltaRows += rows
		if covered > s.stats.DeltaCovered {
			s.stats.DeltaCovered = covered
		}
		s.mu.Unlock()
		return true, nil
	}

	if pd != nil {
		// Fresh connection: re-establish the hub's bins from a snapshot
		// fold before streaming anything (reset-on-connect — what makes
		// a sender killed mid-flush convergent; see pushdown.go).
		pd.PrepareConnect()
		if ok, err := flushDeltas(time.Now()); err != nil {
			return err
		} else if !ok {
			return nil
		}
	}

	for {
		wctx, cancelWait := context.WithTimeout(ctx, hb)
		evs, err := s.DB.Binlog().Wait(wctx, pos, batchSize)
		cancelWait()
		if err != nil {
			if err == warehouse.ErrLogClosed || ctx.Err() != nil {
				return nil
			}
			if errors.Is(err, context.DeadlineExceeded) {
				// Idle interval: tell the hub we are alive, and notice
				// if the reader goroutine declared it dead.
				select {
				case err := <-readErr:
					return err
				default:
				}
				if ok, err := flushDeltas(time.Now()); err != nil {
					return err
				} else if !ok {
					return nil
				}
				conn.SetWriteDeadline(time.Now().Add(writeTimeout(hb)))
				if err := enc.Encode(batch{HB: true}); err != nil {
					if ctx.Err() != nil {
						return nil
					}
					return err
				}
				mHeartbeats.With("satellite").Inc()
				continue
			}
			return err
		}
		out, upTo := s.Rewriter.ProcessBatch(evs)
		if pd != nil {
			// Fold pushdown-realm facts instead of shipping them; the
			// batch frame still carries upTo so the hub's durable commit
			// position advances even when every event folded away.
			if out, err = pd.Consume(out, upTo); err != nil {
				return err
			}
		}
		// Parent the send span under the ingest that produced the
		// newest events in this range, when the binlog retains that
		// mark; the frame carries the span's context to the hub.
		sctx := obs.ContextWithTraceParent(context.Background(), s.DB.Binlog().TraceBetween(pos, upTo))
		sctx, ssp := obs.StartSpan(sctx, "replicate.send")
		ssp.SetAttr("instance", s.Instance)
		ssp.SetAttr("events", strconv.Itoa(len(out)))
		conn.SetWriteDeadline(time.Now().Add(writeTimeout(hb)))
		err = enc.Encode(batch{UpTo: upTo, Events: out, Trace: obs.TraceParent(sctx)})
		ssp.End()
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			return err
		}
		if ok, err := awaitAck(upTo); err != nil {
			return err
		} else if !ok {
			return nil
		}
		pos = upTo
		mSentBatches.With(s.Instance).Inc()
		mSentEvents.With(s.Instance).Add(uint64(len(out)))
		s.setLag(lag, pos)
		s.mu.Lock()
		s.stats.SentBatches++
		s.stats.SentEvents += len(out)
		s.stats.Position = pos
		s.mu.Unlock()
		// Ship any due deltas right behind the acked batch, so delta
		// convergence never waits on an idle heartbeat.
		if ok, err := flushDeltas(time.Now()); err != nil {
			return err
		} else if !ok {
			return nil
		}
	}
}

// setLag publishes the replication-lag gauge: how many binlog events
// the satellite holds beyond the hub's last acknowledged position. A
// caught-up route reads 0.
func (s *Sender) setLag(lag *obs.Gauge, acked uint64) {
	head := s.DB.Binlog().Last()
	if head < acked {
		head = acked // rewriter skipped past the retained head
	}
	lag.Set(float64(head - acked))
}

// Retry backoff bounds for RunWithRetry.
const (
	// DefaultRetryBackoff is the initial reconnect delay when the
	// caller passes backoff <= 0.
	DefaultRetryBackoff = 100 * time.Millisecond
	// MaxRetryBackoff caps the exponential growth so a hub that is down
	// for hours is still rediscovered within seconds of coming back.
	MaxRetryBackoff = 30 * time.Second
)

// nextRetryDelay doubles the delay up to MaxRetryBackoff.
func nextRetryDelay(d time.Duration) time.Duration {
	d *= 2
	if d > MaxRetryBackoff {
		d = MaxRetryBackoff
	}
	return d
}

// jitteredDelay spreads a delay uniformly over [d/2, d] so a fleet of
// satellites that lost the same hub does not reconnect in lockstep.
func jitteredDelay(d time.Duration) time.Duration {
	if d <= 1 {
		return d
	}
	half := d / 2
	return half + time.Duration(rand.Int63n(int64(d-half)+1))
}

// RunWithRetry runs the sender, reconnecting on transient failures
// until the context is cancelled or the handshake is permanently
// rejected. The reconnect delay starts at backoff (DefaultRetryBackoff
// when <= 0), doubles per consecutive failure up to MaxRetryBackoff,
// is jittered over [d/2, d], and resets to the initial value whenever
// a connection gets past the hub's handshake — so a flapping network
// backs off hard while a single dropped connection retries fast. A
// RetryAfter refusal (member quarantine) sleeps exactly the delay the
// hub asked for, then retries with a fresh backoff.
func (s *Sender) RunWithRetry(ctx context.Context, hubAddr string, backoff time.Duration) error {
	if backoff <= 0 {
		backoff = DefaultRetryBackoff
	}
	delay := backoff
	for {
		s.handshook.Store(false)
		err := s.Run(ctx, hubAddr)
		var ra *RetryAfterError
		switch {
		case err == nil:
			return nil
		case errors.Is(err, ErrHandshakeRejected):
			return err
		case errors.As(err, &ra):
			mRetries.With(s.Instance).Inc()
			repLog.Info("hub asked to retry later",
				"instance", s.Instance, "hub", hubAddr, "after", ra.After, "reason", ra.Reason)
			select {
			case <-ctx.Done():
				return nil
			case <-time.After(ra.After):
			}
			delay = backoff
			continue
		}
		if s.handshook.Load() {
			delay = backoff
		}
		mRetries.With(s.Instance).Inc()
		select {
		case <-ctx.Done():
			return nil
		case <-time.After(jitteredDelay(delay)):
		}
		delay = nextRetryDelay(delay)
	}
}

package replicate

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"xdmodfed/internal/obs"
	"xdmodfed/internal/warehouse"
)

// Tight federation: the satellite streams binlog events to the hub
// over TCP as they are committed ("live replication", paper §II-A).
// Protocol (gob-framed):
//
//	satellite -> hub:  hello{instance, version}
//	hub -> satellite:  helloAck{ok, err, resumeLSN}
//	satellite -> hub:  batch{upTo, events}   (repeated)
//	hub -> satellite:  ack{upTo}             (one per batch)
//
// The hub enforces the paper's same-version requirement ("each
// individual XDMoD instance must run the same version of XDMoD",
// §II-A) at handshake time and tells the satellite where to resume
// from, using its durable per-instance commit position.

type hello struct {
	Instance string
	Version  string
}

type helloAck struct {
	OK     bool
	Err    string
	Resume uint64
}

type batch struct {
	UpTo   uint64
	Events []warehouse.Event
}

type ack struct {
	UpTo uint64
}

// Sink is the hub-side handler for replicated event streams; the
// federation core provides one.
type Sink interface {
	// Resume returns the position after which instance should resume.
	Resume(instance string) (uint64, error)
	// ApplyBatch applies events from instance and durably records upTo
	// as its new commit position.
	ApplyBatch(instance string, upTo uint64, events []warehouse.Event) error
}

// Receiver accepts tight-replication connections on the hub.
type Receiver struct {
	Version string
	Sink    Sink
	// Authorize, when set, vets an instance at handshake (the
	// federation core uses it to restrict membership to registered
	// instances).
	Authorize func(instance string) error

	ln     net.Listener
	mu     sync.Mutex
	closed bool
	wg     sync.WaitGroup
}

// Listen starts accepting connections on addr (e.g. "127.0.0.1:0").
// It returns the bound address.
func (r *Receiver) Listen(addr string) (string, error) {
	if r.Sink == nil {
		return "", fmt.Errorf("replicate: receiver has no sink")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	r.ln = ln
	r.wg.Add(1)
	go r.acceptLoop()
	return ln.Addr().String(), nil
}

func (r *Receiver) acceptLoop() {
	defer r.wg.Done()
	for {
		conn, err := r.ln.Accept()
		if err != nil {
			return // listener closed
		}
		r.wg.Add(1)
		go func() {
			defer r.wg.Done()
			defer conn.Close()
			r.serve(conn)
		}()
	}
}

func (r *Receiver) serve(conn net.Conn) {
	dec := gob.NewDecoder(&countingReader{r: conn, c: mRecvBytes})
	enc := gob.NewEncoder(conn)

	var h hello
	if err := dec.Decode(&h); err != nil {
		return
	}
	if h.Version != r.Version {
		enc.Encode(helloAck{OK: false, Err: fmt.Sprintf(
			"version mismatch: hub runs %q, instance %q runs %q (each instance must run the same version)",
			r.Version, h.Instance, h.Version)})
		return
	}
	if r.Authorize != nil {
		if err := r.Authorize(h.Instance); err != nil {
			enc.Encode(helloAck{OK: false, Err: err.Error()})
			return
		}
	}
	resume, err := r.Sink.Resume(h.Instance)
	if err != nil {
		enc.Encode(helloAck{OK: false, Err: err.Error()})
		return
	}
	if err := enc.Encode(helloAck{OK: true, Resume: resume}); err != nil {
		return
	}
	for {
		var b batch
		if err := dec.Decode(&b); err != nil {
			return // connection closed
		}
		if err := r.Sink.ApplyBatch(h.Instance, b.UpTo, b.Events); err != nil {
			return
		}
		mRecvBatches.With(h.Instance).Inc()
		if err := enc.Encode(ack{UpTo: b.UpTo}); err != nil {
			return
		}
	}
}

// Close stops the receiver and waits for connection handlers.
func (r *Receiver) Close() {
	r.mu.Lock()
	if !r.closed && r.ln != nil {
		r.closed = true
		r.ln.Close()
	}
	r.mu.Unlock()
	r.wg.Wait()
}

// SenderStats reports a sender's progress.
type SenderStats struct {
	Hub         string // hub address of the active/most recent connection
	SentBatches int
	SentEvents  int
	Position    uint64
}

// Sender streams one satellite's binlog to one hub (one Sender per
// federation route; a satellite replicating to multiple hubs runs
// several senders, paper §II-C4).
type Sender struct {
	Instance  string
	Version   string
	DB        *warehouse.DB
	Rewriter  *Rewriter
	BatchSize int // default 512

	mu    sync.Mutex
	stats SenderStats

	// handshook records whether the most recent Run got past the hub's
	// handshake; RunWithRetry uses it to reset the backoff after a
	// successful (re)connect instead of punishing a healthy hub that
	// dropped one connection with an already-grown delay.
	handshook atomic.Bool
}

// Stats returns a snapshot of the sender's progress.
func (s *Sender) Stats() SenderStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// ErrHandshakeRejected reports that the hub refused the connection
// (version mismatch or unauthorized instance).
var ErrHandshakeRejected = errors.New("replicate: handshake rejected")

// Run connects to the hub and streams until the context is cancelled,
// the binlog closes, or the connection fails. It returns nil on clean
// shutdown. Callers wanting reconnection wrap Run in a retry loop
// (see RunWithRetry).
func (s *Sender) Run(ctx context.Context, hubAddr string) error {
	d := net.Dialer{}
	conn, err := d.DialContext(ctx, "tcp", hubAddr)
	if err != nil {
		return err
	}
	defer conn.Close()
	// Unblock protocol reads/writes when the context is cancelled.
	stop := context.AfterFunc(ctx, func() { conn.Close() })
	defer stop()

	enc := gob.NewEncoder(&countingWriter{w: conn, c: mSentBytes.With(s.Instance)})
	dec := gob.NewDecoder(conn)
	if err := enc.Encode(hello{Instance: s.Instance, Version: s.Version}); err != nil {
		return err
	}
	var ha helloAck
	if err := dec.Decode(&ha); err != nil {
		return err
	}
	if !ha.OK {
		return fmt.Errorf("%w: %s", ErrHandshakeRejected, ha.Err)
	}
	pos := ha.Resume
	s.handshook.Store(true)
	s.mu.Lock()
	s.stats.Hub = hubAddr
	// The hub's resume position counts as acknowledged: a sender that
	// reconnects with nothing new to send must not report stale lag.
	if pos > s.stats.Position {
		s.stats.Position = pos
	}
	s.mu.Unlock()
	lag := mLag.With(s.Instance, hubAddr)
	s.setLag(lag, pos)
	batchSize := s.BatchSize
	if batchSize <= 0 {
		batchSize = 512
	}
	for {
		evs, err := s.DB.Binlog().Wait(ctx, pos, batchSize)
		if err != nil {
			if err == warehouse.ErrLogClosed || ctx.Err() != nil {
				return nil
			}
			return err
		}
		out, upTo := s.Rewriter.ProcessBatch(evs)
		if err := enc.Encode(batch{UpTo: upTo, Events: out}); err != nil {
			if ctx.Err() != nil {
				return nil
			}
			return err
		}
		var a ack
		if err := dec.Decode(&a); err != nil {
			if ctx.Err() != nil {
				return nil
			}
			return err
		}
		if a.UpTo != upTo {
			return fmt.Errorf("replicate: hub acked %d, expected %d", a.UpTo, upTo)
		}
		pos = upTo
		mSentBatches.With(s.Instance).Inc()
		mSentEvents.With(s.Instance).Add(uint64(len(out)))
		s.setLag(lag, pos)
		s.mu.Lock()
		s.stats.SentBatches++
		s.stats.SentEvents += len(out)
		s.stats.Position = pos
		s.mu.Unlock()
	}
}

// setLag publishes the replication-lag gauge: how many binlog events
// the satellite holds beyond the hub's last acknowledged position. A
// caught-up route reads 0.
func (s *Sender) setLag(lag *obs.Gauge, acked uint64) {
	head := s.DB.Binlog().Last()
	if head < acked {
		head = acked // rewriter skipped past the retained head
	}
	lag.Set(float64(head - acked))
}

// Retry backoff bounds for RunWithRetry.
const (
	// DefaultRetryBackoff is the initial reconnect delay when the
	// caller passes backoff <= 0.
	DefaultRetryBackoff = 100 * time.Millisecond
	// MaxRetryBackoff caps the exponential growth so a hub that is down
	// for hours is still rediscovered within seconds of coming back.
	MaxRetryBackoff = 30 * time.Second
)

// nextRetryDelay doubles the delay up to MaxRetryBackoff.
func nextRetryDelay(d time.Duration) time.Duration {
	d *= 2
	if d > MaxRetryBackoff {
		d = MaxRetryBackoff
	}
	return d
}

// jitteredDelay spreads a delay uniformly over [d/2, d] so a fleet of
// satellites that lost the same hub does not reconnect in lockstep.
func jitteredDelay(d time.Duration) time.Duration {
	if d <= 1 {
		return d
	}
	half := d / 2
	return half + time.Duration(rand.Int63n(int64(d-half)+1))
}

// RunWithRetry runs the sender, reconnecting on transient failures
// until the context is cancelled or the handshake is permanently
// rejected. The reconnect delay starts at backoff (DefaultRetryBackoff
// when <= 0), doubles per consecutive failure up to MaxRetryBackoff,
// is jittered over [d/2, d], and resets to the initial value whenever
// a connection gets past the hub's handshake — so a flapping network
// backs off hard while a single dropped connection retries fast.
func (s *Sender) RunWithRetry(ctx context.Context, hubAddr string, backoff time.Duration) error {
	if backoff <= 0 {
		backoff = DefaultRetryBackoff
	}
	delay := backoff
	for {
		s.handshook.Store(false)
		err := s.Run(ctx, hubAddr)
		switch {
		case err == nil:
			return nil
		case errors.Is(err, ErrHandshakeRejected):
			return err
		}
		if s.handshook.Load() {
			delay = backoff
		}
		mRetries.With(s.Instance).Inc()
		select {
		case <-ctx.Done():
			return nil
		case <-time.After(jitteredDelay(delay)):
		}
		delay = nextRetryDelay(delay)
	}
}

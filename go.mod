module xdmodfed

go 1.22

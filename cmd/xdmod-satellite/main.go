// Command xdmod-satellite runs one XDMoD satellite instance: it
// restores its warehouse snapshot, serves the REST API, and starts
// tight-federation replication to every hub route in its configuration
// (paper Fig. 2: the satellite side of a federation).
//
// Usage:
//
//	xdmod-satellite -config xdmod.json -db warehouse.snap -listen :8080
//
// An admin account can be bootstrapped with -admin-user/-admin-pass.
// The process exits on SIGINT/SIGTERM, saving the warehouse snapshot.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"xdmodfed/internal/auth"
	"xdmodfed/internal/config"
	"xdmodfed/internal/core"
	"xdmodfed/internal/obs"
	"xdmodfed/internal/rest"
	"xdmodfed/internal/warehouse"
)

func main() {
	var (
		configPath = flag.String("config", "", "instance configuration JSON (required)")
		dbPath     = flag.String("db", "", "warehouse snapshot path to load/save (optional)")
		listen     = flag.String("listen", "127.0.0.1:8080", "REST API listen address")
		adminUser  = flag.String("admin-user", "", "bootstrap a local admin account")
		adminPass  = flag.String("admin-pass", "", "password for -admin-user")
		walPath    = flag.String("wal", "", "durable binlog path: replayed on startup, appended while running")
		logJSON    = flag.Bool("log-json", false, "emit structured logs as JSON instead of text")
		qcEnable   = flag.Bool("query-cache", true, "enable the chart query-result cache")
		qcBytes    = flag.Int64("query-cache-bytes", 0, "query-cache capacity in bytes (0 = config/default)")
		qcTTL      = flag.String("query-cache-ttl", "", "optional query-cache entry TTL, e.g. 30s (default none)")
		walFsync   = flag.String("wal-fsync", "", "WAL fsync policy: always, interval or none (default config/always)")
		walFsyncIv = flag.String("wal-fsync-interval", "", "fsync timer for -wal-fsync=interval, e.g. 100ms")
		traceCap   = flag.Int("trace-capacity", 0, "retained spans for /debug/traces (0 = config/default)")
		storageBk  = flag.String("storage-backend", "", "segment-store backend: memory or disk (default config/memory)")
		dataDir    = flag.String("data-dir", "", "segment directory for -storage-backend=disk")
		hotTail    = flag.Int("hot-tail-rows", 0, "rows buffered per table before sealing a segment (0 = config/default)")
		maxResid   = flag.Int64("max-resident-bytes", 0, "heap cap for materialized disk segments (0 = config/default)")
		shards     = flag.Int("shards", 0, "aggregation shards per realm (0/1 = unsharded)")
		shardKey   = flag.String("shard-key", "", "shard routing key: resource or schema (default config/resource)")
		admEnable  = flag.Bool("admission", false, "enable front-door admission control (rate limits, bounded queue, load shedding)")
		admGlobal  = flag.Float64("admission-global-rps", 0, "global sustained requests/sec (0 = config/default)")
		admUser    = flag.Float64("admission-user-rps", 0, "per-user sustained requests/sec (0 = config/default)")
		admConc    = flag.Int("max-concurrent", 0, "concurrent in-flight API requests past which arrivals queue (0 = config/default)")
		admQueue   = flag.Int("max-queue", 0, "queued API requests past which arrivals are shed with 429 (0 = config/default)")
		admWait    = flag.String("queue-timeout", "", "max time a request may wait for a slot, e.g. 2s (default config/2s)")
		repMode    = flag.String("replication-mode", "", "tight replication payload: facts or pushdown (default config/facts)")
		pdFlush    = flag.String("pushdown-flush-interval", "", "delta flush pacing for -replication-mode=pushdown, e.g. 2s")
	)
	flag.Parse()
	if *configPath == "" {
		fatal(fmt.Errorf("-config is required"))
	}
	obs.SetLogOutput(os.Stderr, *logJSON)
	cfg, err := config.LoadFile(*configPath)
	if err != nil {
		fatal(err)
	}
	applyCacheFlags(&cfg, *qcEnable, *qcBytes, *qcTTL)
	applyDurabilityFlags(&cfg, *walFsync, *walFsyncIv)
	applyObsFlags(&cfg, *traceCap)
	applyStorageFlags(&cfg, *storageBk, *dataDir, *hotTail, *maxResid)
	applyShardingFlags(&cfg, *shards, *shardKey)
	applyAdmissionFlags(&cfg, *admEnable, *admGlobal, *admUser, *admConc, *admQueue, *admWait)
	applyReplicationFlags(&cfg, *repMode, *pdFlush)
	sat, err := core.NewSatellite(cfg)
	if err != nil {
		fatal(err)
	}
	if *walPath != "" {
		pos, err := warehouse.ReplayLog(sat.DB, *walPath)
		if err != nil {
			fatal(err)
		}
		if pos > 0 {
			fmt.Printf("recovered %d binlog events from %s\n", pos, *walPath)
			if err := sat.AggregateAll(); err != nil {
				fatal(err)
			}
		}
		interval, err := cfg.Durability.FsyncIntervalDuration()
		if err != nil {
			fatal(err)
		}
		wal, err := warehouse.OpenLogWriterOpts(sat.DB, *walPath, sat.DB.Binlog().Last(), warehouse.WALOptions{
			Fsync:         warehouse.FsyncPolicy(cfg.Durability.WALFsync),
			FsyncInterval: interval,
		})
		if err != nil {
			fatal(err)
		}
		defer wal.Close()
	}
	if *dbPath != "" {
		if _, err := os.Stat(*dbPath); err == nil {
			f, err := os.Open(*dbPath)
			if err != nil {
				fatal(err)
			}
			if err := sat.RestoreFromHubBackup(f); err != nil {
				fatal(err)
			}
			f.Close()
			fmt.Printf("restored warehouse from %s\n", *dbPath)
		}
	}
	if *adminUser != "" {
		err := sat.Auth.Vault().Create(auth.User{
			Username: *adminUser, Role: auth.RoleManager, DisplayName: "Administrator",
		}, *adminPass)
		if err != nil {
			fatal(err)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if err := sat.StartFederation(ctx); err != nil {
		fatal(err)
	}
	defer sat.StopFederation()

	srv := rest.NewHTTPServer(*listen, rest.NewSatelliteServer(sat).Handler())
	go func() {
		<-ctx.Done()
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(sctx)
	}()
	fmt.Printf("xdmod-satellite %q serving on %s (version %s, %d hub routes)\n",
		cfg.Name, *listen, cfg.Version, len(cfg.Hubs))
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fatal(err)
	}

	if *dbPath != "" {
		if err := sat.DB.SaveFile(*dbPath); err != nil {
			fatal(err)
		}
		fmt.Printf("warehouse saved to %s\n", *dbPath)
	}
}

// applyAdmissionFlags layers the front-door admission knobs over the
// config file: only flags the operator actually set override it.
func applyAdmissionFlags(cfg *config.InstanceConfig, enable bool, globalRPS, userRPS float64, maxConc, maxQueue int, queueTimeout string) {
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "admission":
			cfg.Admission.Enabled = enable
		case "admission-global-rps":
			cfg.Admission.GlobalRPS = globalRPS
		case "admission-user-rps":
			cfg.Admission.UserRPS = userRPS
		case "max-concurrent":
			cfg.Admission.MaxConcurrent = maxConc
		case "max-queue":
			cfg.Admission.MaxQueue = maxQueue
		case "queue-timeout":
			cfg.Admission.QueueTimeout = queueTimeout
		}
	})
	if err := cfg.Admission.Validate(); err != nil {
		fatal(err)
	}
}

// applyReplicationFlags layers the replication-mode knobs over the
// config file: only flags the operator actually set override it.
func applyReplicationFlags(cfg *config.InstanceConfig, mode, pushdownFlush string) {
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "replication-mode":
			cfg.Replication.Mode = mode
		case "pushdown-flush-interval":
			cfg.Replication.PushdownFlushInterval = pushdownFlush
		}
	})
	if err := cfg.Replication.Validate(); err != nil {
		fatal(err)
	}
}

// applyDurabilityFlags layers the WAL durability knobs over the config
// file: only flags the operator actually set override it.
func applyDurabilityFlags(cfg *config.InstanceConfig, fsync, interval string) {
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "wal-fsync":
			cfg.Durability.WALFsync = fsync
		case "wal-fsync-interval":
			cfg.Durability.WALFsyncInterval = interval
		}
	})
	if err := cfg.Durability.Validate(); err != nil {
		fatal(err)
	}
}

// applyObsFlags layers the observability command-line knobs over the
// config file: only flags the operator actually set override it.
func applyObsFlags(cfg *config.InstanceConfig, traceCap int) {
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "trace-capacity" {
			cfg.Observability.TraceCapacity = traceCap
		}
	})
	if err := cfg.Observability.Validate(); err != nil {
		fatal(err)
	}
}

// applyStorageFlags layers the segment-store knobs over the config
// file: only flags the operator actually set override it.
func applyStorageFlags(cfg *config.InstanceConfig, backend, dataDir string, hotTail int, maxResident int64) {
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "storage-backend":
			cfg.Storage.Backend = backend
		case "data-dir":
			cfg.Storage.DataDir = dataDir
		case "hot-tail-rows":
			cfg.Storage.HotTailRows = hotTail
		case "max-resident-bytes":
			cfg.Storage.MaxResidentBytes = maxResident
		}
	})
	if err := cfg.Storage.Validate(); err != nil {
		fatal(err)
	}
}

// applyShardingFlags layers the aggregation-sharding knobs over the
// config file: only flags the operator actually set override it.
func applyShardingFlags(cfg *config.InstanceConfig, shards int, key string) {
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "shards":
			cfg.Sharding.Shards = shards
		case "shard-key":
			cfg.Sharding.Key = key
		}
	})
	if err := cfg.Sharding.Validate(); err != nil {
		fatal(err)
	}
}

// applyCacheFlags layers the query-cache command-line knobs over the
// config file: only flags the operator actually set override it.
func applyCacheFlags(cfg *config.InstanceConfig, enable bool, maxBytes int64, ttl string) {
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "query-cache":
			cfg.QueryCache.Disabled = !enable
		case "query-cache-bytes":
			cfg.QueryCache.MaxBytes = maxBytes
		case "query-cache-ttl":
			cfg.QueryCache.TTL = ttl
		}
	})
	if err := cfg.QueryCache.Validate(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xdmod-satellite:", err)
	os.Exit(1)
}

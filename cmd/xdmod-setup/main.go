// Command xdmod-setup generates validated instance configuration — the
// role of Open XDMoD's setup assistant: "we have developed tools to
// assist academic or industrial centers in XDMoD's configuration, so
// that departmental hierarchy, resource information, user types and
// access, and other settings reflect the host institution and its
// computing resources" (paper §I-C).
//
// Usage:
//
//	xdmod-setup -name ccr -org "University at Buffalo" \
//	    -resource rush:hpc:1.0 -resource lakeeffect:cloud \
//	    -hub hub.example.org:7100 -mode tight \
//	    -out xdmod.json -hierarchy-out hierarchy.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"xdmodfed/internal/config"
	"xdmodfed/internal/core"
	"xdmodfed/internal/hierarchy"
)

type resourceFlags []string

func (r *resourceFlags) String() string { return strings.Join(*r, ",") }
func (r *resourceFlags) Set(v string) error {
	*r = append(*r, v)
	return nil
}

func main() {
	var (
		name         = flag.String("name", "", "instance name (required)")
		org          = flag.String("org", "", "organization name")
		isHub        = flag.Bool("hub-instance", false, "configure a federation hub instead of a satellite")
		hubAddr      = flag.String("hub", "", "federation hub replication address for this satellite")
		mode         = flag.String("mode", "tight", "federation mode: tight or loose")
		exclude      = flag.String("exclude-resources", "", "comma-separated resources withheld from federation")
		realms       = flag.String("realms", "", "comma-separated realms to federate (default: Jobs)")
		out          = flag.String("out", "xdmod.json", "output configuration path")
		hierarchyOut = flag.String("hierarchy-out", "", "also write a hierarchy skeleton to this path")
		wallLevels   = flag.String("wall-levels", "hub", "wall-time aggregation levels: a, b, or hub (Table I)")
		resources    resourceFlags
	)
	flag.Var(&resources, "resource", "resource as name:type[:su_factor] (repeatable; type hpc|cloud|storage)")
	flag.Parse()

	if *name == "" {
		fatal(fmt.Errorf("-name is required"))
	}
	cfg := config.InstanceConfig{
		Name:         *name,
		Version:      core.Version,
		Organization: *org,
		IsHub:        *isHub,
	}
	switch *wallLevels {
	case "a":
		cfg.AggregationLevels = append(cfg.AggregationLevels, config.InstanceAWallTime())
	case "b":
		cfg.AggregationLevels = append(cfg.AggregationLevels, config.InstanceBWallTime())
	case "hub":
		cfg.AggregationLevels = append(cfg.AggregationLevels, config.HubWallTime())
	default:
		fatal(fmt.Errorf("-wall-levels must be a, b, or hub"))
	}
	cfg.AggregationLevels = append(cfg.AggregationLevels, config.DefaultJobSize(), config.CloudVMMemory())

	for _, spec := range resources {
		rc, err := parseResource(spec)
		if err != nil {
			fatal(err)
		}
		cfg.Resources = append(cfg.Resources, rc)
	}

	if *hubAddr != "" {
		route := config.HubRoute{HubAddr: *hubAddr, Mode: *mode}
		if *exclude != "" {
			route.ExcludeResources = splitList(*exclude)
		}
		if *realms != "" {
			route.IncludeRealms = splitList(*realms)
		}
		cfg.Hubs = append(cfg.Hubs, route)
	}

	if err := cfg.Validate(); err != nil {
		fatal(err)
	}
	if err := cfg.SaveFile(*out); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%d resources, %d hub routes)\n", *out, len(cfg.Resources), len(cfg.Hubs))

	if *hierarchyOut != "" {
		h, err := hierarchy.New(hierarchy.Config{
			Levels: hierarchy.DefaultLevels(),
			Nodes: []hierarchy.NodeConfig{
				{Name: "ExampleCollege", Level: "Decanal Unit"},
				{Name: "ExampleDepartment", Level: "Department", Parent: "ExampleCollege"},
				{Name: "example-lab", Level: "PI Group", Parent: "ExampleDepartment"},
			},
			Assignments: map[string]string{"example-pi": "example-lab"},
		})
		if err != nil {
			fatal(err)
		}
		f, err := os.Create(*hierarchyOut)
		if err != nil {
			fatal(err)
		}
		if err := h.Save(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (edit to reflect your institution)\n", *hierarchyOut)
	}
}

func parseResource(spec string) (config.ResourceConfig, error) {
	parts := strings.Split(spec, ":")
	if len(parts) < 2 || len(parts) > 3 {
		return config.ResourceConfig{}, fmt.Errorf("resource %q: want name:type[:su_factor]", spec)
	}
	rc := config.ResourceConfig{Name: parts[0], Type: parts[1]}
	if len(parts) == 3 {
		f, err := strconv.ParseFloat(parts[2], 64)
		if err != nil {
			return rc, fmt.Errorf("resource %q: bad su_factor: %v", spec, err)
		}
		rc.SUFactor = f
	}
	return rc, nil
}

func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xdmod-setup:", err)
	os.Exit(1)
}

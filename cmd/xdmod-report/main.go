// Command xdmod-report regenerates the paper's tables and figures.
//
// Usage:
//
//	xdmod-report -experiment fig1            # one artifact
//	xdmod-report -experiment all             # every artifact
//	xdmod-report -experiment fig1 -svg out/  # also write SVG charts
//	xdmod-report -list                       # list artifacts
//
// Exit status is non-zero when any shape check fails, so the command
// doubles as the reproduction gate for EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"os"

	"xdmodfed/internal/report"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "experiment id (fig1, fig2, fig3, table1, fig4, fig5, fig6, fig7) or 'all'")
		scale      = flag.Int("scale", report.DefaultOptions().Scale, "workload scale (jobs per month per unit weight, users, VMs)")
		seed       = flag.Int64("seed", report.DefaultOptions().Seed, "workload generator seed")
		svgDir     = flag.String("svg", "", "directory to write chart SVGs into (optional)")
		list       = flag.Bool("list", false, "list experiments and exit")
		markdown   = flag.String("markdown", "", "write a full EXPERIMENTS.md-style document to this path")
	)
	flag.Parse()

	if *list {
		for _, e := range report.Experiments() {
			fmt.Printf("%-8s %s\n         %s\n", e.ID, e.Title, e.Description)
		}
		return
	}

	opts := report.Options{Scale: *scale, Seed: *seed}
	var results []*report.Result
	if *experiment == "all" {
		rs, err := report.RunAll(opts)
		if err != nil {
			fatal(err)
		}
		results = rs
	} else {
		e, ok := report.Find(*experiment)
		if !ok {
			fatal(fmt.Errorf("unknown experiment %q (use -list)", *experiment))
		}
		r, err := e.Run(opts)
		if err != nil {
			fatal(err)
		}
		results = []*report.Result{r}
	}

	if *markdown != "" {
		if err := os.WriteFile(*markdown, []byte(report.Markdown(results, opts)), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *markdown)
	}

	failed := false
	for _, r := range results {
		fmt.Println(r.Render())
		if *svgDir != "" {
			paths, err := r.SaveSVGs(*svgDir)
			if err != nil {
				fatal(err)
			}
			for _, p := range paths {
				fmt.Printf("wrote %s\n", p)
			}
			fmt.Println()
		}
		if !r.Passed() {
			failed = true
		}
	}
	if failed {
		fmt.Fprintln(os.Stderr, "xdmod-report: one or more shape checks FAILED")
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xdmod-report:", err)
	os.Exit(1)
}

// Command xdmod-shredder parses resource-manager accounting logs into
// staging job records — the first stage of the XDMoD pipeline. It
// mirrors Open XDMoD's xdmod-shredder utility.
//
// Usage:
//
//	xdmod-shredder -format slurm -resource rush -input sacct.log [-json out.json]
//
// Without -json, a summary is printed; with -json, the staging records
// are written as a JSON array for xdmod-ingestor.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"xdmodfed/internal/shredder"
)

func main() {
	var (
		format   = flag.String("format", "slurm", "accounting log format (slurm, pbs)")
		resource = flag.String("resource", "", "resource name the log came from (required)")
		input    = flag.String("input", "-", "accounting log path ('-' for stdin)")
		jsonOut  = flag.String("json", "", "write staging records as JSON to this path")
	)
	flag.Parse()
	if *resource == "" {
		fatal(fmt.Errorf("-resource is required"))
	}
	parser, err := shredder.New(*format)
	if err != nil {
		fatal(err)
	}

	var r io.Reader = os.Stdin
	if *input != "-" {
		f, err := os.Open(*input)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}

	recs, errs := parser.Parse(r, *resource)
	fmt.Printf("shredded %d job records from %s (%d bad lines)\n", len(recs), *input, len(errs))
	for i, e := range errs {
		if i >= 10 {
			fmt.Printf("  ... and %d more errors\n", len(errs)-10)
			break
		}
		fmt.Printf("  %v\n", e)
	}

	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			fatal(err)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", " ")
		if err := enc.Encode(recs); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *jsonOut)
	}
	if len(errs) > 0 && len(recs) == 0 {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xdmod-shredder:", err)
	os.Exit(1)
}

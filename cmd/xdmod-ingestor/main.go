// Command xdmod-ingestor loads staged or raw data into an instance's
// warehouse and runs aggregation — Open XDMoD's xdmod-ingestor
// equivalent. The warehouse persists as a snapshot file between runs.
//
// Usage:
//
//	xdmod-ingestor -config xdmod.json -db warehouse.snap \
//	    -slurm sacct.log -resource rush
//	xdmod-ingestor -config xdmod.json -db warehouse.snap \
//	    -staging records.json
//	xdmod-ingestor -config xdmod.json -db warehouse.snap \
//	    -storage-json usage.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"

	"xdmodfed/internal/config"
	"xdmodfed/internal/core"
	"xdmodfed/internal/obs"
	"xdmodfed/internal/shredder"
)

func main() {
	var (
		configPath  = flag.String("config", "", "instance configuration JSON (required)")
		dbPath      = flag.String("db", "", "warehouse snapshot path to load/save (required)")
		slurmLog    = flag.String("slurm", "", "slurm accounting log to shred and ingest")
		pbsLog      = flag.String("pbs", "", "pbs accounting log to shred and ingest")
		resource    = flag.String("resource", "", "resource name for -slurm/-pbs")
		stagingJSON = flag.String("staging", "", "staging job records JSON (from xdmod-shredder)")
		storageJSON = flag.String("storage-json", "", "storage realm JSON document")
		metricsAddr = flag.String("metrics-listen", "", "serve GET /metrics (Prometheus text) on this address during the run")
		logJSON     = flag.Bool("log-json", false, "emit structured logs as JSON instead of text")
	)
	flag.Parse()
	if *configPath == "" || *dbPath == "" {
		fatal(fmt.Errorf("-config and -db are required"))
	}
	obs.SetLogOutput(os.Stderr, *logJSON)
	if *metricsAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", obs.ContentType)
			obs.Default.Render(w)
		})
		ln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			fatal(err)
		}
		defer ln.Close()
		go http.Serve(ln, mux)
		fmt.Printf("metrics on http://%s/metrics\n", ln.Addr())
	}

	sat, err := loadSatellite(*configPath, *dbPath)
	if err != nil {
		fatal(err)
	}

	if *slurmLog != "" {
		ingestLog(sat, *slurmLog, "slurm", *resource)
	}
	if *pbsLog != "" {
		ingestLog(sat, *pbsLog, "pbs", *resource)
	}
	if *stagingJSON != "" {
		f, err := os.Open(*stagingJSON)
		if err != nil {
			fatal(err)
		}
		var recs []shredder.JobRecord
		if err := json.NewDecoder(f).Decode(&recs); err != nil {
			fatal(err)
		}
		f.Close()
		st, err := sat.Pipeline.IngestJobRecords(recs)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("staging %s: %s\n", *stagingJSON, st)
	}
	if *storageJSON != "" {
		f, err := os.Open(*storageJSON)
		if err != nil {
			fatal(err)
		}
		st, err := sat.Pipeline.IngestStorageJSON(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("storage %s: %s\n", *storageJSON, st)
	}

	if err := sat.DB.SaveFile(*dbPath); err != nil {
		fatal(err)
	}
	fmt.Printf("warehouse saved to %s\n", *dbPath)
}

// loadSatellite builds the satellite and, when the snapshot exists,
// restores its warehouse state and re-aggregates.
func loadSatellite(configPath, dbPath string) (*core.Satellite, error) {
	cfg, err := config.LoadFile(configPath)
	if err != nil {
		return nil, err
	}
	sat, err := core.NewSatellite(cfg)
	if err != nil {
		return nil, err
	}
	if _, err := os.Stat(dbPath); err == nil {
		f, err := os.Open(dbPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		if err := sat.RestoreFromHubBackup(f); err != nil {
			return nil, fmt.Errorf("restoring %s: %w", dbPath, err)
		}
		fmt.Printf("restored warehouse from %s\n", dbPath)
	}
	return sat, nil
}

func ingestLog(sat *core.Satellite, path, format, resource string) {
	if resource == "" {
		fatal(fmt.Errorf("-resource is required with -%s", format))
	}
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	st, err := sat.Pipeline.IngestJobLog(f, format, resource)
	f.Close()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s %s: %s\n", format, path, st)
	for i, e := range st.Errors {
		if i >= 5 {
			fmt.Printf("  ... and %d more errors\n", len(st.Errors)-5)
			break
		}
		fmt.Printf("  %v\n", e)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xdmod-ingestor:", err)
	os.Exit(1)
}

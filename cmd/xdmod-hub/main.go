// Command xdmod-hub runs an XDMoD federation hub: it accepts tight
// replication from registered satellite members, serves the unified
// REST API over the federation's combined data, and can load loose
// dumps shipped by batch members (paper §II).
//
// Usage:
//
//	xdmod-hub -config hub.json -listen :8080 -replication :7100 \
//	    -members siteA,siteB,siteC
//
// Loose dumps are loaded at startup with repeated -loose flags of the
// form instance=path.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"xdmodfed/internal/auth"
	"xdmodfed/internal/config"
	"xdmodfed/internal/core"
	"xdmodfed/internal/obs"
	"xdmodfed/internal/rest"
)

// looseFlags collects repeated -loose instance=path flags.
type looseFlags []string

func (l *looseFlags) String() string { return strings.Join(*l, ",") }
func (l *looseFlags) Set(v string) error {
	*l = append(*l, v)
	return nil
}

func main() {
	var (
		configPath  = flag.String("config", "", "hub configuration JSON (required)")
		listen      = flag.String("listen", "127.0.0.1:8080", "REST API listen address")
		replication = flag.String("replication", "127.0.0.1:7100", "tight replication listen address")
		members     = flag.String("members", "", "comma-separated registered member instances")
		adminUser   = flag.String("admin-user", "", "bootstrap a local admin account")
		adminPass   = flag.String("admin-pass", "", "password for -admin-user")
		logJSON     = flag.Bool("log-json", false, "emit structured logs as JSON instead of text")
		qcEnable    = flag.Bool("query-cache", true, "enable the chart query-result cache")
		qcBytes     = flag.Int64("query-cache-bytes", 0, "query-cache capacity in bytes (0 = config/default)")
		qcTTL       = flag.String("query-cache-ttl", "", "optional query-cache entry TTL, e.g. 30s (default none)")
		aggInc      = flag.Bool("agg-incremental", true, "fold replicated inserts into hub aggregates at apply time")
		aggWorkers  = flag.Int("agg-rebuild-workers", 0, "parallel scan workers for full re-aggregation (0 = one per CPU)")
		shards      = flag.Int("shards", 0, "aggregation shards per realm (0/1 = unsharded)")
		shardKey    = flag.String("shard-key", "", "shard routing key: resource or schema (default config/resource)")
		traceCap    = flag.Int("trace-capacity", 0, "retained spans for /debug/traces (0 = config/default)")
		scrapeIv    = flag.String("scrape-interval", "", "member telemetry scrape interval, e.g. 15s (default config/15s)")
		storageBk   = flag.String("storage-backend", "", "segment-store backend: memory or disk (default config/memory)")
		dataDir     = flag.String("data-dir", "", "segment directory for -storage-backend=disk")
		hotTail     = flag.Int("hot-tail-rows", 0, "rows buffered per table before sealing a segment (0 = config/default)")
		maxResid    = flag.Int64("max-resident-bytes", 0, "heap cap for materialized disk segments (0 = config/default)")
		admEnable   = flag.Bool("admission", false, "enable front-door admission control (rate limits, bounded queue, load shedding)")
		admGlobal   = flag.Float64("admission-global-rps", 0, "global sustained requests/sec (0 = config/default)")
		admUser     = flag.Float64("admission-user-rps", 0, "per-user sustained requests/sec (0 = config/default)")
		admConc     = flag.Int("max-concurrent", 0, "concurrent in-flight API requests past which arrivals queue (0 = config/default)")
		admQueue    = flag.Int("max-queue", 0, "queued API requests past which arrivals are shed with 429 (0 = config/default)")
		admWait     = flag.String("queue-timeout", "", "max time a request may wait for a slot, e.g. 2s (default config/2s)")
		repMode     = flag.String("replication-mode", "", "validate the replication mode knob: facts or pushdown (satellites choose; the hub grants offers it can merge)")
		pdFlush     = flag.String("pushdown-flush-interval", "", "delta flush pacing recorded in config, e.g. 2s")
		loose       looseFlags
		scrape      scrapeFlags
	)
	flag.Var(&loose, "loose", "load a loose dump: instance=path (repeatable)")
	flag.Var(&scrape, "scrape", "scrape a member's telemetry: name=addr (repeatable)")
	flag.Parse()
	if *configPath == "" {
		fatal(fmt.Errorf("-config is required"))
	}
	obs.SetLogOutput(os.Stderr, *logJSON)
	cfg, err := config.LoadFile(*configPath)
	if err != nil {
		fatal(err)
	}
	applyCacheFlags(&cfg, *qcEnable, *qcBytes, *qcTTL)
	applyAggFlags(&cfg, *aggInc, *aggWorkers)
	applyShardingFlags(&cfg, *shards, *shardKey)
	applyTelemetryFlags(&cfg, *traceCap, *scrapeIv, scrape)
	applyStorageFlags(&cfg, *storageBk, *dataDir, *hotTail, *maxResid)
	applyAdmissionFlags(&cfg, *admEnable, *admGlobal, *admUser, *admConc, *admQueue, *admWait)
	applyReplicationFlags(&cfg, *repMode, *pdFlush)
	hub, err := core.NewHub(cfg)
	if err != nil {
		fatal(err)
	}
	for _, m := range strings.Split(*members, ",") {
		if m = strings.TrimSpace(m); m != "" {
			if err := hub.Register(m); err != nil {
				fatal(err)
			}
		}
	}
	if *adminUser != "" {
		err := hub.Auth.Vault().Create(auth.User{
			Username: *adminUser, Role: auth.RoleManager, DisplayName: "Federation Administrator",
		}, *adminPass)
		if err != nil {
			fatal(err)
		}
	}

	for _, spec := range loose {
		inst, path, ok := strings.Cut(spec, "=")
		if !ok {
			fatal(fmt.Errorf("bad -loose %q, want instance=path", spec))
		}
		f, err := os.Open(path)
		if err != nil {
			fatal(err)
		}
		if err := hub.LoadLooseDump(inst, f); err != nil {
			fatal(err)
		}
		f.Close()
		fmt.Printf("loaded loose dump for %s from %s\n", inst, path)
	}

	repAddr, err := hub.Listen(*replication)
	if err != nil {
		fatal(err)
	}
	defer hub.Close()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if hub.Telemetry.Targets() > 0 {
		go hub.Telemetry.Run(ctx)
	}
	srv := rest.NewHTTPServer(*listen, rest.NewHubServer(hub).Handler())
	go func() {
		<-ctx.Done()
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(sctx)
	}()
	fmt.Printf("xdmod-hub %q: REST on %s, replication on %s, %d members\n",
		cfg.Name, *listen, repAddr, len(hub.Members()))
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fatal(err)
	}
}

// applyCacheFlags layers the query-cache command-line knobs over the
// config file: only flags the operator actually set override it.
func applyCacheFlags(cfg *config.InstanceConfig, enable bool, maxBytes int64, ttl string) {
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "query-cache":
			cfg.QueryCache.Disabled = !enable
		case "query-cache-bytes":
			cfg.QueryCache.MaxBytes = maxBytes
		case "query-cache-ttl":
			cfg.QueryCache.TTL = ttl
		}
	})
	if err := cfg.QueryCache.Validate(); err != nil {
		fatal(err)
	}
}

// applyReplicationFlags layers the replication-mode knobs over the
// config file: only flags the operator actually set override it.
func applyReplicationFlags(cfg *config.InstanceConfig, mode, pushdownFlush string) {
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "replication-mode":
			cfg.Replication.Mode = mode
		case "pushdown-flush-interval":
			cfg.Replication.PushdownFlushInterval = pushdownFlush
		}
	})
	if err := cfg.Replication.Validate(); err != nil {
		fatal(err)
	}
}

// scrapeFlags collects repeated -scrape name=addr flags.
type scrapeFlags []string

func (s *scrapeFlags) String() string { return strings.Join(*s, ",") }
func (s *scrapeFlags) Set(v string) error {
	*s = append(*s, v)
	return nil
}

// applyTelemetryFlags layers the observability/telemetry command-line
// knobs over the config file: only flags the operator actually set
// override it, and -scrape targets add to the configured member list.
func applyTelemetryFlags(cfg *config.InstanceConfig, traceCap int, scrapeIv string, scrape scrapeFlags) {
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "trace-capacity":
			cfg.Observability.TraceCapacity = traceCap
		case "scrape-interval":
			cfg.Telemetry.ScrapeInterval = scrapeIv
		}
	})
	for _, spec := range scrape {
		name, addr, ok := strings.Cut(spec, "=")
		if !ok || name == "" || addr == "" {
			fatal(fmt.Errorf("bad -scrape %q, want name=addr", spec))
		}
		cfg.Telemetry.Members = append(cfg.Telemetry.Members, config.TelemetryMember{Name: name, Addr: addr})
	}
	if err := cfg.Observability.Validate(); err != nil {
		fatal(err)
	}
	if err := cfg.Telemetry.Validate(); err != nil {
		fatal(err)
	}
}

// applyStorageFlags layers the segment-store knobs over the config
// file: only flags the operator actually set override it.
func applyStorageFlags(cfg *config.InstanceConfig, backend, dataDir string, hotTail int, maxResident int64) {
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "storage-backend":
			cfg.Storage.Backend = backend
		case "data-dir":
			cfg.Storage.DataDir = dataDir
		case "hot-tail-rows":
			cfg.Storage.HotTailRows = hotTail
		case "max-resident-bytes":
			cfg.Storage.MaxResidentBytes = maxResident
		}
	})
	if err := cfg.Storage.Validate(); err != nil {
		fatal(err)
	}
}

// applyAdmissionFlags layers the front-door admission knobs over the
// config file: only flags the operator actually set override it.
func applyAdmissionFlags(cfg *config.InstanceConfig, enable bool, globalRPS, userRPS float64, maxConc, maxQueue int, queueTimeout string) {
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "admission":
			cfg.Admission.Enabled = enable
		case "admission-global-rps":
			cfg.Admission.GlobalRPS = globalRPS
		case "admission-user-rps":
			cfg.Admission.UserRPS = userRPS
		case "max-concurrent":
			cfg.Admission.MaxConcurrent = maxConc
		case "max-queue":
			cfg.Admission.MaxQueue = maxQueue
		case "queue-timeout":
			cfg.Admission.QueueTimeout = queueTimeout
		}
	})
	if err := cfg.Admission.Validate(); err != nil {
		fatal(err)
	}
}

// applyAggFlags layers the aggregation command-line knobs over the
// config file: only flags the operator actually set override it.
func applyAggFlags(cfg *config.InstanceConfig, incremental bool, workers int) {
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "agg-incremental":
			cfg.Aggregation.DisableIncremental = !incremental
		case "agg-rebuild-workers":
			cfg.Aggregation.RebuildWorkers = workers
		}
	})
	if err := cfg.Aggregation.Validate(); err != nil {
		fatal(err)
	}
}

// applyShardingFlags layers the aggregation-sharding knobs over the
// config file: only flags the operator actually set override it.
func applyShardingFlags(cfg *config.InstanceConfig, shards int, key string) {
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "shards":
			cfg.Sharding.Shards = shards
		case "shard-key":
			cfg.Sharding.Key = key
		}
	})
	if err := cfg.Sharding.Validate(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xdmod-hub:", err)
	os.Exit(1)
}

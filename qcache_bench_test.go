// Query-result cache benchmarks (EXP-B10): the read hot path of a
// busy hub. Cold measures the uncached engine query, hot the cache
// hit, coalesced a 16-way thundering herd on a cold key. The flag
// -emit-bench additionally runs all three via testing.Benchmark and
// writes BENCH_2.json with the measured hot/cold speedup (make bench).
package xdmodfed

import (
	"context"
	"encoding/json"
	"flag"
	"os"
	"runtime"
	"sync"
	"testing"

	"xdmodfed/internal/aggregate"
	"xdmodfed/internal/realm/jobs"
	"xdmodfed/internal/rest"
)

var emitBench = flag.Bool("emit-bench", false, "run the emitter tests and write benchmark results to BENCH_*.json")

// chartServer builds a REST server over an instance holding queryFacts
// aggregated job facts, with the query cache at its defaults.
func chartServer(b testing.TB) *rest.Server {
	b.Helper()
	in := benchInstance(b)
	st, err := in.Pipeline.IngestJobRecords(benchRecords(queryFacts))
	if err != nil {
		b.Fatal(err)
	}
	if st.Ingested != queryFacts {
		b.Fatalf("ingested %d of %d", st.Ingested, queryFacts)
	}
	return rest.NewServer(in)
}

// chartReq is the repeated dashboard query: monthly CPU hours by user.
var chartReq = aggregate.Request{
	MetricID: jobs.MetricCPUHours,
	GroupBy:  jobs.DimUser,
	Period:   aggregate.Month,
}

// BenchmarkChartQueryCold (EXP-B10): every iteration bumps the
// warehouse epoch first, so the cache never hits and each query pays
// the full aggregation-table walk.
func BenchmarkChartQueryCold(b *testing.B) {
	srv := chartServer(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		srv.Instance.DB.BumpEpoch()
		if _, _, err := srv.QuerySeries(context.Background(), "Jobs", chartReq, "", 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkChartQueryHot (EXP-B10): the same query repeated with no
// intervening writes — the steady state of a dashboard full of users
// looking at the same charts.
func BenchmarkChartQueryHot(b *testing.B) {
	srv := chartServer(b)
	if _, _, err := srv.QuerySeries(context.Background(), "Jobs", chartReq, "", 0); err != nil {
		b.Fatal(err) // prime the cache
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := srv.QuerySeries(context.Background(), "Jobs", chartReq, "", 0); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if st, ok := srv.CacheStats(); !ok || st.Hits < uint64(b.N) {
		b.Fatalf("stats %+v: %d iterations were not all cache hits", st, b.N)
	}
}

// BenchmarkChartQueryCoalesced (EXP-B10): per round, 16 goroutines
// request the same cold key concurrently; coalescing must collapse
// them onto a single underlying engine query per round.
func BenchmarkChartQueryCoalesced(b *testing.B) {
	const herd = 16
	srv := chartServer(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		srv.Instance.DB.BumpEpoch()
		var wg sync.WaitGroup
		wg.Add(herd)
		for g := 0; g < herd; g++ {
			go func() {
				defer wg.Done()
				if _, _, err := srv.QuerySeries(context.Background(), "Jobs", chartReq, "", 0); err != nil {
					b.Error(err)
				}
			}()
		}
		wg.Wait()
	}
	b.StopTimer()
	st, ok := srv.CacheStats()
	if !ok {
		b.Fatal("cache disabled")
	}
	if st.Fills != uint64(b.N) {
		b.Fatalf("%d rounds performed %d engine queries; coalescing failed", b.N, st.Fills)
	}
	b.ReportMetric(float64(st.Coalesced)/float64(b.N), "coalesced/round")
}

// TestEmitBenchJSON runs the chart-query benchmarks under
// testing.Benchmark and records the results (and the hot/cold
// speedup) in BENCH_2.json. Gated behind -emit-bench so a plain
// `go test` stays fast; `make bench` passes the flag.
func TestEmitBenchJSON(t *testing.T) {
	if !*emitBench {
		t.Skip("pass -emit-bench to run the query-cache benchmarks and write BENCH_2.json")
	}
	type row struct {
		Name        string  `json:"name"`
		NsPerOp     float64 `json:"ns_per_op"`
		AllocsPerOp int64   `json:"allocs_per_op"`
	}
	run := func(name string, fn func(*testing.B)) (row, testing.BenchmarkResult) {
		res := testing.Benchmark(fn)
		return row{
			Name:        name,
			NsPerOp:     float64(res.NsPerOp()),
			AllocsPerOp: res.AllocsPerOp(),
		}, res
	}
	cold, coldRes := run("BenchmarkChartQueryCold", BenchmarkChartQueryCold)
	hot, hotRes := run("BenchmarkChartQueryHot", BenchmarkChartQueryHot)
	coalesced, _ := run("BenchmarkChartQueryCoalesced", BenchmarkChartQueryCoalesced)

	speedup := 0.0
	if hotRes.NsPerOp() > 0 {
		speedup = float64(coldRes.NsPerOp()) / float64(hotRes.NsPerOp())
	}
	out := map[string]any{
		"go":            runtime.Version(),
		"cpus":          runtime.NumCPU(),
		"gomaxprocs":    runtime.GOMAXPROCS(0),
		"benchmarks":    []row{cold, hot, coalesced},
		"hot_speedup_x": speedup,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_2.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("cold %.0f ns/op, hot %.0f ns/op, speedup %.1fx", cold.NsPerOp, hot.NsPerOp, speedup)
	if speedup < 10 {
		t.Errorf("hot/cold speedup %.1fx, want >= 10x", speedup)
	}
}
